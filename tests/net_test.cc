// The TCP front end must be observably the stdio daemon, many times over:
// every request line gets exactly one response line, in order, per
// connection, byte-identical to what the stdin loop would have produced —
// under pipelining, blank lines, oversized lines, backpressure, half-close,
// injected network faults, connection caps, and graceful drain. Plus unit
// coverage for the timer wheel the timeouts ride on.
//
// Test shape: the server runs on the test thread (Poll() steps the reactor),
// clients are plain blocking-connect/non-blocking-read sockets pumped in
// lockstep with the server. Single-threaded, so every interleaving is
// deterministic.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/server.h"
#include "net/timer_wheel.h"
#include "obs/metrics.h"
#include "service/dispatcher.h"
#include "service/protocol.h"
#include "service/session_manager.h"
#include "util/fault_injection.h"

namespace mvrc {
namespace {

// ---------------------------------------------------------------------------
// TimerWheel units
// ---------------------------------------------------------------------------

TEST(TimerWheelTest, FiresAtTheRightTickAndInOrder) {
  TimerWheel wheel(/*tick_ms=*/10, /*num_slots=*/8);
  std::vector<int> fired;
  wheel.Schedule(0, 30, [&] { fired.push_back(30); });
  wheel.Schedule(0, 10, [&] { fired.push_back(10); });
  wheel.Schedule(0, 20, [&] { fired.push_back(20); });

  wheel.Advance(9);
  EXPECT_TRUE(fired.empty());
  wheel.Advance(10);
  EXPECT_EQ(fired, std::vector<int>({10}));
  wheel.Advance(35);
  EXPECT_EQ(fired, std::vector<int>({10, 20, 30}));
}

TEST(TimerWheelTest, DelaysLongerThanTheWheelSpanUseRounds) {
  // 8 slots * 10ms = 80ms span; 250ms needs multiple laps.
  TimerWheel wheel(10, 8);
  int fired = 0;
  wheel.Schedule(0, 250, [&] { ++fired; });
  wheel.Advance(240);
  EXPECT_EQ(fired, 0);
  wheel.Advance(260);
  EXPECT_EQ(fired, 1);
  wheel.Advance(1000);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelPreventsFiringAndIsIdempotent) {
  TimerWheel wheel(10, 8);
  int fired = 0;
  TimerWheel::TimerId id = wheel.Schedule(0, 20, [&] { ++fired; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));
  wheel.Advance(100);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(wheel.Cancel(TimerWheel::kInvalidTimer));
}

TEST(TimerWheelTest, ZeroDelayFiresOnTheNextTickNotImmediately) {
  TimerWheel wheel(10, 8);
  int fired = 0;
  wheel.Schedule(5, 0, [&] { ++fired; });
  wheel.Advance(5);
  EXPECT_EQ(fired, 0);
  wheel.Advance(20);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, MsUntilNextTickBoundsTheNextDueTimer) {
  TimerWheel wheel(10, 8);
  EXPECT_EQ(wheel.MsUntilNextTick(0), -1);  // empty: no bound needed
  wheel.Schedule(0, 50, [] {});
  const int64_t wait = wheel.MsUntilNextTick(0);
  ASSERT_GE(wait, 0);
  EXPECT_LE(wait, 50);
}

TEST(TimerWheelTest, CallbackMayCancelAnotherTimerDueInTheSameAdvance) {
  // The "first timer closes the connection owning the second" hazard: the
  // wheel collects due callbacks before firing any, and a Cancel of an
  // already-collected timer must not crash (the callback runs; the owner is
  // responsible for making it a no-op, as Connection does via closed_).
  TimerWheel wheel(10, 8);
  int second_fired = 0;
  TimerWheel::TimerId second = TimerWheel::kInvalidTimer;
  wheel.Schedule(0, 10, [&] { wheel.Cancel(second); });
  second = wheel.Schedule(0, 10, [&] { ++second_fired; });
  wheel.Advance(20);
  EXPECT_LE(second_fired, 1);
}

// ---------------------------------------------------------------------------
// End-to-end server harness
// ---------------------------------------------------------------------------

constexpr const char* kWalletSql =
    "TABLE Wallet(id, balance, PRIMARY KEY(id));\\n"
    "PROGRAM Deposit(:a, :v):\\n"
    "  UPDATE Wallet SET balance = balance + :v WHERE id = :a;\\n"
    "COMMIT;\\n";

std::string LoadRequest(const std::string& session) {
  return "{\"cmd\":\"load_sql\",\"session\":\"" + session + "\",\"sql\":\"" +
         kWalletSql + "\"}";
}

std::string CheckRequest(const std::string& session) {
  return "{\"cmd\":\"check\",\"session\":\"" + session + "\",\"method\":\"type2\"}";
}

int64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().counter(name)->Value();
}

/// A NetServer over a fresh SessionManager, stepped manually on this thread.
class TestServer {
 public:
  explicit TestServer(const NetServer::Options& options,
                      size_t max_line_bytes = size_t{1} << 20)
      : manager_(1),
        dispatcher_(manager_, ProtocolOptions(), max_line_bytes),
        server_(dispatcher_, options) {
    Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.error();
  }

  uint16_t port() const { return server_.port(); }
  NetServer& server() { return server_; }
  RequestDispatcher& dispatcher() { return dispatcher_; }

  void Poll(int max_wait_ms = 5) { server_.Poll(max_wait_ms); }

  /// Steps the reactor until `pred` holds or `timeout_ms` elapses.
  bool PumpUntil(const std::function<bool()>& pred, int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      server_.Poll(5);
    }
    return true;
  }

 private:
  SessionManager manager_;
  RequestDispatcher dispatcher_;
  NetServer server_;
};

/// Blocking-connect, non-blocking-read client pumped in lockstep with the
/// server on the same thread.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
      Close();
      return false;
    }
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    return true;
  }

  /// Sends all of `data`, pumping the server whenever the socket buffer is
  /// full (the server must drain its side for a huge pipeline to fit).
  bool SendAll(const std::string& data, TestServer* server = nullptr) {
    size_t sent = 0;
    int stalls = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (server == nullptr || ++stalls > 100000) return false;
        server->Poll(5);
        Drain();  // make room by consuming responses
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Reads the next response line, pumping the server while waiting.
  bool ReadLine(TestServer& server, std::string* line, int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      if (eof_) return false;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      server.Poll(5);
      Drain();
    }
  }

  /// True once the server closed the connection (and no buffered line
  /// remains unread — call ReadLine first when responses are expected).
  bool WaitForEof(TestServer& server, int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!eof_) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      server.Poll(5);
      Drain();
    }
    return true;
  }

  /// Shuts down the write side (half-close) while still reading responses.
  void FinishSending() { ::shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  const std::string& buffered() const { return buffer_; }

 private:
  void Drain() {
    char chunk[16 * 1024];
    while (fd_ >= 0) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) eof_ = true;
      break;  // EAGAIN, EOF, or error (ECONNRESET counts as EOF here)
    }
    if (errno == ECONNRESET) eof_ = true;
  }

  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

NetServer::Options FastOptions() {
  NetServer::Options options;
  options.port = 0;  // ephemeral
  options.limits.idle_timeout_ms = 0;
  options.limits.write_timeout_ms = 0;
  options.drain_timeout_ms = 2000;
  return options;
}

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Global().Reset(); }
  void TearDown() override { FaultInjection::Global().Reset(); }
};

TEST_F(NetServerTest, RoundTripLoadAndCheck) {
  TestServer server(FastOptions());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendAll(LoadRequest("s") + "\n" + CheckRequest("s") + "\n"));

  std::string response;
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"cmd\":\"load_sql\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"cmd\":\"check\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"robust\""), std::string::npos) << response;
}

TEST_F(NetServerTest, PipelinedRequestsAnswerInOrder) {
  TestServer server(FastOptions());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  std::string pipeline;
  for (int i = 0; i < 20; ++i) pipeline += LoadRequest("s" + std::to_string(i)) + "\n";
  ASSERT_TRUE(client.SendAll(pipeline, &server));

  for (int i = 0; i < 20; ++i) {
    std::string response;
    ASSERT_TRUE(client.ReadLine(server, &response)) << "response " << i;
    EXPECT_NE(response.find("\"session\":\"s" + std::to_string(i) + "\""),
              std::string::npos)
        << "out of order at " << i << ": " << response;
  }
}

TEST_F(NetServerTest, BlankLinesIgnoredAndOverflowKeepsStreamInSync) {
  NetServer::Options options = FastOptions();
  options.limits.max_line_bytes = 64;
  TestServer server(options, /*max_line_bytes=*/64);
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  const std::string oversized(200, 'x');
  ASSERT_TRUE(client.SendAll("\n" + oversized + "\n{\"cmd\":\"nope\"}\n", &server));

  std::string response;
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("exceeds 64 bytes"), std::string::npos) << response;
  EXPECT_NE(response.find("\"retryable\":false"), std::string::npos) << response;
  // The stream stayed in sync: the next response answers the next request.
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("unknown cmd"), std::string::npos) << response;
}

TEST_F(NetServerTest, HalfCloseStillAnswersIncludingFinalUnterminatedLine) {
  TestServer server(FastOptions());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Final request has no trailing newline — EOF terminates it, like stdio.
  ASSERT_TRUE(client.SendAll(LoadRequest("s") + "\n" + CheckRequest("s")));
  client.FinishSending();

  std::string response;
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"cmd\":\"load_sql\""), std::string::npos);
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"cmd\":\"check\""), std::string::npos);
  EXPECT_TRUE(client.WaitForEof(server));
}

TEST_F(NetServerTest, MaxConnsShedsWithRetryableErrorLine) {
  NetServer::Options options = FastOptions();
  options.max_conns = 1;
  TestServer server(options);
  const int64_t shed_before = CounterValue("net.conns_shed");

  TestClient first;
  ASSERT_TRUE(first.Connect(server.port()));
  ASSERT_TRUE(server.PumpUntil([&] { return server.server().live_connections() == 1; }));

  TestClient second;
  ASSERT_TRUE(second.Connect(server.port()));
  std::string response;
  ASSERT_TRUE(second.ReadLine(server, &response));
  EXPECT_NE(response.find("connection capacity"), std::string::npos) << response;
  EXPECT_NE(response.find("\"retryable\":true"), std::string::npos) << response;
  EXPECT_TRUE(second.WaitForEof(server));
  EXPECT_EQ(CounterValue("net.conns_shed"), shed_before + 1);

  // The first connection still works, and closing it frees the slot.
  ASSERT_TRUE(first.SendAll(LoadRequest("s") + "\n"));
  ASSERT_TRUE(first.ReadLine(server, &response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  first.Close();
  ASSERT_TRUE(server.PumpUntil([&] { return server.server().live_connections() == 0; }));

  TestClient third;
  ASSERT_TRUE(third.Connect(server.port()));
  ASSERT_TRUE(third.SendAll(CheckRequest("missing") + "\n"));
  ASSERT_TRUE(third.ReadLine(server, &response));
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
}

TEST_F(NetServerTest, IdleTimeoutClosesQuietConnections) {
  NetServer::Options options = FastOptions();
  options.limits.idle_timeout_ms = 50;
  TestServer server(options);
  const int64_t timeouts_before = CounterValue("net.idle_timeouts");

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  EXPECT_TRUE(client.WaitForEof(server));
  EXPECT_EQ(CounterValue("net.idle_timeouts"), timeouts_before + 1);
}

TEST_F(NetServerTest, ActivityResetsTheIdleTimeout) {
  NetServer::Options options = FastOptions();
  options.limits.idle_timeout_ms = 200;
  TestServer server(options);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Keep sending blank lines (ignored, but they are activity) well past the
  // idle deadline; the connection must survive.
  const auto end = std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (std::chrono::steady_clock::now() < end) {
    ASSERT_TRUE(client.SendAll("\n"));
    server.Poll(20);
  }
  std::string response;
  ASSERT_TRUE(client.SendAll(CheckRequest("none") + "\n"));
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
}

TEST_F(NetServerTest, WriteTimeoutKillsAPeerThatNeverDrains) {
  NetServer::Options options = FastOptions();
  options.limits.write_timeout_ms = 50;
  TestServer server(options);
  const int64_t timeouts_before = CounterValue("net.write_timeouts");

  // Every flush attempt reports EAGAIN: the response is queued, never sent,
  // and the progress-based write timeout must fire.
  FaultInjection::Global().Arm("net.write_stall", 1, 1'000'000);
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendAll(CheckRequest("none") + "\n"));
  EXPECT_TRUE(client.WaitForEof(server));
  EXPECT_EQ(CounterValue("net.write_timeouts"), timeouts_before + 1);
}

TEST_F(NetServerTest, InjectedReadResetClosesTheConnection) {
  TestServer server(FastOptions());
  const int64_t errors_before = CounterValue("net.read_errors");

  FaultInjection::Global().Arm("net.read_reset", 1);
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendAll(CheckRequest("none") + "\n"));
  EXPECT_TRUE(client.WaitForEof(server));
  EXPECT_EQ(CounterValue("net.read_errors"), errors_before + 1);
  EXPECT_EQ(server.server().live_connections(), 0u);
}

TEST_F(NetServerTest, InjectedAcceptFailDropsOneConnectionNotTheListener) {
  TestServer server(FastOptions());
  FaultInjection::Global().Arm("net.accept_fail", 1);

  TestClient dropped;
  ASSERT_TRUE(dropped.Connect(server.port()));
  EXPECT_TRUE(dropped.WaitForEof(server));

  TestClient next;
  ASSERT_TRUE(next.Connect(server.port()));
  ASSERT_TRUE(next.SendAll(CheckRequest("none") + "\n"));
  std::string response;
  ASSERT_TRUE(next.ReadLine(server, &response));
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
}

TEST_F(NetServerTest, InjectedShortWritesStillDeliverFullResponses) {
  TestServer server(FastOptions());
  // Every send is capped to one byte for a while: responses must still
  // arrive complete and in order.
  FaultInjection::Global().Arm("net.write_short", 1, 1'000'000);
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendAll(LoadRequest("s") + "\n" + CheckRequest("s") + "\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"cmd\":\"load_sql\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"cmd\":\"check\""), std::string::npos) << response;
}

TEST_F(NetServerTest, BackpressurePausesReadingAndRecovers) {
  NetServer::Options options = FastOptions();
  // Tiny write buffer cap: a pipelining client that reads nothing trips
  // backpressure almost immediately.
  options.limits.max_write_buffer_bytes = 512;
  TestServer server(options);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  std::string pipeline;
  const int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    pipeline += CheckRequest("missing" + std::to_string(i)) + "\n";
  }
  // Send without reading responses; the server must survive (pausing reads,
  // never buffering unboundedly) and answer everything once we drain.
  ASSERT_TRUE(client.SendAll(pipeline, &server));
  for (int i = 0; i < kRequests; ++i) {
    std::string response;
    ASSERT_TRUE(client.ReadLine(server, &response)) << "response " << i;
    EXPECT_NE(response.find("missing" + std::to_string(i)), std::string::npos)
        << "out of order at " << i;
  }
}

TEST_F(NetServerTest, DrainAnswersBufferedRequestsThenCloses) {
  TestServer server(FastOptions());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Queue a response the server cannot flush yet (the first two flush
  // attempts stall), then drain: the drain must wait for the flush, so the
  // client still receives its answer before the close.
  FaultInjection::Global().Arm("net.write_stall", 1, 2);
  ASSERT_TRUE(client.SendAll(CheckRequest("none") + "\n"));
  ASSERT_TRUE(server.PumpUntil(
      [&] { return FaultInjection::Global().hits("net.write_stall") >= 1; }));

  volatile std::sig_atomic_t stop = 1;
  server.server().Run(&stop);  // stop already set: serve nothing, drain

  std::string response;
  ASSERT_TRUE(client.ReadLine(server, &response));
  EXPECT_NE(response.find("\"cmd\":\"check\""), std::string::npos) << response;
  EXPECT_TRUE(client.WaitForEof(server));
  EXPECT_EQ(server.server().live_connections(), 0u);
}

TEST_F(NetServerTest, DrainDeadlineForceClosesStuckConnections) {
  NetServer::Options options = FastOptions();
  options.drain_timeout_ms = 100;
  TestServer server(options);
  const int64_t forced_before = CounterValue("net.drain_forced_closes");

  // The peer never drains and every flush stalls: drain cannot complete.
  FaultInjection::Global().Arm("net.write_stall", 1, 1'000'000);
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.SendAll(CheckRequest("none") + "\n"));
  ASSERT_TRUE(server.PumpUntil(
      [&] { return FaultInjection::Global().hits("net.write_stall") >= 1; }));

  volatile std::sig_atomic_t stop = 1;
  const auto begin = std::chrono::steady_clock::now();
  server.server().Run(&stop);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);
  EXPECT_EQ(server.server().live_connections(), 0u);
  EXPECT_EQ(CounterValue("net.drain_forced_closes"), forced_before + 1);
  EXPECT_TRUE(client.WaitForEof(server));
}

// ---------------------------------------------------------------------------
// Cross-transport parity
// ---------------------------------------------------------------------------

std::string NormalizeTimings(const std::string& response) {
  static const std::regex elapsed("\"elapsed_us\":[0-9]+");
  return std::regex_replace(response, elapsed, "\"elapsed_us\":0");
}

TEST_F(NetServerTest, TcpResponsesAreByteIdenticalToStdioDispatch) {
  const std::vector<std::string> requests = {
      LoadRequest("s"),
      CheckRequest("s"),
      "{\"cmd\":\"check\",\"session\":\"s\",\"method\":\"type1\"}",
      "{\"cmd\":\"subsets\",\"session\":\"s\"}",
      "{\"cmd\":\"stats\",\"session\":\"s\"}",
      "{\"cmd\":\"remove_program\",\"session\":\"s\",\"name\":\"Deposit\"}",
      "{\"cmd\":\"check\",\"session\":\"s\",\"method\":\"type2\"}",
      "not json at all",
      "{\"cmd\":\"what\"}",
      "{\"cmd\":\"check\",\"session\":\"absent\"}",
  };

  // Reference: the same dispatch path the stdio loop uses, fresh manager.
  std::vector<std::string> reference;
  {
    SessionManager manager(1);
    RequestDispatcher dispatcher(manager, ProtocolOptions(), size_t{1} << 20);
    for (const std::string& request : requests) {
      std::optional<std::string> response = dispatcher.OnLine(request);
      ASSERT_TRUE(response.has_value());
      reference.push_back(NormalizeTimings(*response));
    }
  }

  TestServer server(FastOptions());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  std::string pipeline;
  for (const std::string& request : requests) pipeline += request + "\n";
  ASSERT_TRUE(client.SendAll(pipeline, &server));
  for (size_t i = 0; i < requests.size(); ++i) {
    std::string response;
    ASSERT_TRUE(client.ReadLine(server, &response)) << "response " << i;
    EXPECT_EQ(NormalizeTimings(response), reference[i]) << "request: " << requests[i];
  }
}

TEST_F(NetServerTest, ManyConcurrentClientsAllGetTheirOwnAnswers) {
  TestServer server(FastOptions());
  constexpr int kClients = 32;
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<TestClient>());
    ASSERT_TRUE(clients.back()->Connect(server.port())) << "client " << i;
  }
  ASSERT_TRUE(server.PumpUntil([&] {
    return server.server().live_connections() == static_cast<size_t>(kClients);
  }));
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i]->SendAll(LoadRequest("c" + std::to_string(i)) + "\n"));
  }
  for (int i = 0; i < kClients; ++i) {
    std::string response;
    ASSERT_TRUE(clients[i]->ReadLine(server, &response)) << "client " << i;
    EXPECT_NE(response.find("\"session\":\"c" + std::to_string(i) + "\""),
              std::string::npos)
        << "client " << i << " got: " << response;
  }
}

}  // namespace
}  // namespace mvrc
