// Randomized property tests: generate random schemas, programs and
// constraint annotations, and check the cross-cutting invariants of the
// analysis on each (TEST_P over seeds):
//
//   P1  type-I robust implies type-II robust (the refinement only adds
//       detected-robust workloads, never removes any)
//   P2  literal Algorithm 2 and the boolean-matrix implementation agree
//   P3  tuple-granularity robust implies attribute-granularity robust
//   P4  foreign keys only remove summary edges
//   P5  counterflow edges originate only from read-carrying statement types
//   P6  all edges connect statements over the same relation
//   P7  unfolding yields well-formed LTPs (constraint positions in range,
//       parent/child relations matching the foreign key, parents key-based)
//   P8  on sampled mvrc-allowed schedules over random instantiations:
//       Lemma 4.1 and Theorem 4.2 hold, and the summary graph witnesses
//       every dependency's flow class at the program level

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "instantiate/instantiator.h"
#include "mvcc/serialization_graph.h"
#include "robust/detector.h"
#include "summary/build_summary.h"
#include "workloads/workload.h"

namespace mvrc {
namespace {

class RandomWorkloadGen {
 public:
  explicit RandomWorkloadGen(uint64_t seed) : rng_(seed) {}

  Workload Generate() {
    Workload workload;
    workload.name = "random";
    Schema& schema = workload.schema;

    const int num_relations = Pick(2, 3);
    for (int r = 0; r < num_relations; ++r) {
      std::vector<std::string> attrs;
      int num_attrs = Pick(2, 4);
      for (int a = 0; a < num_attrs; ++a) {
        attrs.push_back("a" + std::to_string(r) + std::to_string(a));
      }
      schema.AddRelation("R" + std::to_string(r), attrs, {attrs[0]});
    }
    // Foreign keys from every later relation to relation 0, sometimes.
    for (int r = 1; r < num_relations; ++r) {
      if (Chance(0.6)) {
        schema.AddForeignKey("f" + std::to_string(r), r, {}, 0);
      }
    }

    const int num_programs = Pick(2, 3);
    for (int p = 0; p < num_programs; ++p) {
      workload.programs.push_back(GenerateProgram(schema, p));
      workload.abbreviations.push_back("P" + std::to_string(p));
    }
    return workload;
  }

 private:
  int Pick(int lo, int hi) { return lo + static_cast<int>(rng_() % (hi - lo + 1)); }
  bool Chance(double p) { return (rng_() % 1000) < p * 1000; }

  AttrSet RandomSubset(const Schema& schema, RelationId rel, bool non_empty) {
    AttrSet set;
    int n = schema.relation(rel).num_attrs();
    for (int a = 0; a < n; ++a) {
      if (Chance(0.45)) set.Insert(a);
    }
    if (non_empty && set.empty()) set.Insert(static_cast<AttrId>(rng_() % n));
    return set;
  }

  Statement RandomStatement(const Schema& schema, const std::string& label) {
    RelationId rel = static_cast<RelationId>(rng_() % schema.num_relations());
    switch (rng_() % 7) {
      case 0:
        return Statement::Insert(label, schema, rel);
      case 1:
        return Statement::KeySelect(label, schema, rel,
                                    RandomSubset(schema, rel, false));
      case 2:
        return Statement::PredSelect(label, schema, rel,
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false));
      case 3:
        return Statement::KeyUpdate(label, schema, rel,
                                    RandomSubset(schema, rel, false),
                                    RandomSubset(schema, rel, true));
      case 4:
        return Statement::PredUpdate(label, schema, rel,
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, true));
      case 5:
        return Statement::KeyDelete(label, schema, rel);
      default:
        return Statement::PredDelete(label, schema, rel,
                                     RandomSubset(schema, rel, false));
    }
  }

  Btp GenerateProgram(const Schema& schema, int index) {
    Btp program("P" + std::to_string(index));
    const int num_statements = Pick(2, 5);
    std::vector<StmtId> ids;
    for (int q = 0; q < num_statements; ++q) {
      ids.push_back(program.AddStatement(
          RandomStatement(schema, "q" + std::to_string(q + 1))));
    }
    // Structure: linear, or wrap a random contiguous range into a loop,
    // optional or choice.
    std::vector<Btp::NodeId> nodes;
    for (StmtId id : ids) nodes.push_back(program.Stmt(id));
    if (num_statements >= 2 && Chance(0.5)) {
      int from = Pick(0, num_statements - 2);
      int to = Pick(from + 1, num_statements - 1);
      std::vector<Btp::NodeId> inner(nodes.begin() + from, nodes.begin() + to + 1);
      Btp::NodeId wrapped;
      switch (rng_() % 3) {
        case 0:
          wrapped = program.Loop(program.Seq(inner));
          break;
        case 1:
          wrapped = program.Optional(program.Seq(inner));
          break;
        default:
          wrapped = program.Choice(program.Seq(inner), program.Stmt(ids[from]));
          break;
      }
      std::vector<Btp::NodeId> rebuilt(nodes.begin(), nodes.begin() + from);
      rebuilt.push_back(wrapped);
      rebuilt.insert(rebuilt.end(), nodes.begin() + to + 1, nodes.end());
      nodes = std::move(rebuilt);
    }
    program.Finish(program.Seq(nodes));

    // Random valid foreign-key constraints.
    for (ForeignKeyId f = 0; f < schema.num_foreign_keys(); ++f) {
      const ForeignKey& fk = schema.foreign_key(f);
      for (StmtId child = 0; child < program.num_statements(); ++child) {
        if (program.statement(child).rel() != fk.dom) continue;
        for (StmtId parent = 0; parent < program.num_statements(); ++parent) {
          if (parent == child) continue;
          if (program.statement(parent).rel() != fk.range) continue;
          if (!IsKeyBased(program.statement(parent).type())) continue;
          if (Chance(0.4)) program.AddFkConstraint(schema, parent, f, child);
        }
      }
    }
    return program;
  }

  std::mt19937_64 rng_;
};

class RandomWorkloadProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorkloadProperties, DetectorInvariants) {
  RandomWorkloadGen gen(GetParam() * 7919 + 13);
  Workload workload = gen.Generate();

  // P4: foreign keys only remove edges.
  SummaryGraph with_fk = BuildSummaryGraph(workload.programs,
                                           AnalysisSettings::AttrDepFk());
  SummaryGraph without_fk =
      BuildSummaryGraph(workload.programs, AnalysisSettings::AttrDep());
  EXPECT_LE(with_fk.num_edges(), without_fk.num_edges());
  EXPECT_LE(with_fk.num_counterflow_edges(), without_fk.num_counterflow_edges());
  EXPECT_EQ(with_fk.num_non_counterflow_edges(), without_fk.num_non_counterflow_edges())
      << "FKs must only suppress counterflow edges";

  for (AnalysisSettings settings :
       {AnalysisSettings::AttrDep(), AnalysisSettings::AttrDepFk(),
        AnalysisSettings::TupleDep(), AnalysisSettings::TupleDepFk()}) {
    SummaryGraph graph = BuildSummaryGraph(workload.programs, settings);

    // P1: type-I robust => type-II robust.
    if (IsRobust(graph, Method::kTypeI)) {
      EXPECT_TRUE(IsRobust(graph, Method::kTypeII)) << settings.name();
    }
    // P2: naive and optimized agree.
    EXPECT_EQ(FindTypeIICycle(graph).has_value(),
              FindTypeIICycleNaive(graph).has_value())
        << settings.name();

    // P5 / P6: edge structure.
    for (const SummaryEdge& edge : graph.edges()) {
      const Statement& from = graph.program(edge.from_program).stmt(edge.from_occ);
      const Statement& to = graph.program(edge.to_program).stmt(edge.to_occ);
      EXPECT_EQ(from.rel(), to.rel());
      if (edge.counterflow) {
        bool read_like = from.type() == StatementType::kKeySelect ||
                         from.type() == StatementType::kPredSelect ||
                         from.type() == StatementType::kPredUpdate ||
                         from.type() == StatementType::kPredDelete;
        EXPECT_TRUE(read_like) << ToString(from.type());
        EXPECT_TRUE(WritesTuples(to.type()));
      }
    }
  }

  // P3: tuple-granularity robust => attribute-granularity robust.
  if (IsRobustAgainstMvrc(workload.programs, AnalysisSettings::TupleDepFk(),
                          Method::kTypeII)) {
    EXPECT_TRUE(IsRobustAgainstMvrc(workload.programs, AnalysisSettings::AttrDepFk(),
                                    Method::kTypeII));
  }

  // P7: unfolded LTPs are well-formed.
  for (const Ltp& ltp : UnfoldAtMost2(workload.programs)) {
    for (const OccFkConstraint& constraint : ltp.constraints()) {
      ASSERT_GE(constraint.parent_pos, 0);
      ASSERT_LT(constraint.parent_pos, ltp.size());
      ASSERT_GE(constraint.child_pos, 0);
      ASSERT_LT(constraint.child_pos, ltp.size());
      const ForeignKey& fk = workload.schema.foreign_key(constraint.fk);
      EXPECT_EQ(ltp.stmt(constraint.parent_pos).rel(), fk.range);
      EXPECT_EQ(ltp.stmt(constraint.child_pos).rel(), fk.dom);
      EXPECT_TRUE(IsKeyBased(ltp.stmt(constraint.parent_pos).type()));
    }
  }
}

TEST_P(RandomWorkloadProperties, ScheduleLevelTheorems) {
  RandomWorkloadGen gen(GetParam() * 104729 + 7);
  Workload workload = gen.Generate();
  std::vector<Ltp> ltps = UnfoldAtMost2(workload.programs);
  std::mt19937_64 rng(GetParam() * 31 + 1);

  int checked = 0;
  for (int attempt = 0; attempt < 60 && checked < 25; ++attempt) {
    // Pick two random non-empty LTPs and bindings.
    const Ltp& l1 = ltps[rng() % ltps.size()];
    const Ltp& l2 = ltps[rng() % ltps.size()];
    if (l1.empty() || l2.empty() || l1.size() + l2.size() > 10) continue;
    std::vector<std::vector<StatementBinding>> b1 = EnumerateBindings(l1, 2, false);
    std::vector<std::vector<StatementBinding>> b2 = EnumerateBindings(l2, 2, false);
    if (b1.empty() || b2.empty()) continue;
    std::optional<Transaction> t1 = InstantiateLtp(l1, b1[rng() % b1.size()], 0);
    std::optional<Transaction> t2 = InstantiateLtp(l2, b2[rng() % b2.size()], 1);
    if (!t1 || !t2) continue;

    // Sample a random chunk-respecting interleaving.
    auto units = [](const Transaction& txn) {
      std::vector<std::pair<int, int>> out;
      int pos = 0;
      while (pos < txn.size()) {
        int chunk = txn.ChunkOf(pos);
        if (chunk >= 0) {
          out.push_back(txn.chunks()[chunk]);
          pos = txn.chunks()[chunk].second + 1;
        } else {
          out.emplace_back(pos, pos);
          ++pos;
        }
      }
      return out;
    };
    std::vector<std::vector<std::pair<int, int>>> txn_units{units(*t1), units(*t2)};
    std::vector<size_t> next(2, 0);
    std::vector<OpRef> order;
    const Transaction* txns[2] = {&*t1, &*t2};
    while (next[0] < txn_units[0].size() || next[1] < txn_units[1].size()) {
      int t = static_cast<int>(rng() % 2);
      if (next[t] >= txn_units[t].size()) t = 1 - t;
      auto [first, last] = txn_units[t][next[t]++];
      for (int pos = first; pos <= last; ++pos) order.push_back({txns[t]->id(), pos});
    }
    Result<Schedule> schedule = Schedule::ReadLastCommitted({*t1, *t2}, order);
    if (!schedule.ok() || !schedule.value().IsMvrcAllowed()) continue;
    ++checked;

    SerializationGraph graph = SerializationGraph::Build(schedule.value());
    for (const Dependency& dep : graph.dependencies()) {
      if (dep.counterflow) {
        EXPECT_TRUE(dep.type == DepType::kRW || dep.type == DepType::kPredRW)
            << DescribeDependency(schedule.value(), workload.schema, dep);
      }
    }
    if (!graph.IsConflictSerializable()) {
      EXPECT_TRUE(graph.AllCyclesTypeII())
          << schedule.value().ToString(workload.schema);
    }
  }
  // Some seeds may produce few valid samples; that is fine — the sweep over
  // seeds provides volume.
  SUCCEED() << "checked " << checked << " schedules";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadProperties, ::testing::Range(0, 40));

}  // namespace
}  // namespace mvrc
