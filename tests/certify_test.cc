#include "robust/certify.h"

#include <gtest/gtest.h>

#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

TEST(CertifyTest, AuctionCertifiedRobust) {
  CertificationOutcome outcome =
      CertifyRobustness(MakeAuction(), AnalysisSettings::AttrDepFk());
  EXPECT_TRUE(outcome.IsCertifiedRobust());
  EXPECT_FALSE(outcome.IsCertifiedNonRobust());
  EXPECT_FALSE(outcome.IsPossibleFalseNegative());
  EXPECT_FALSE(outcome.witness.has_value());
  EXPECT_NE(outcome.Describe(MakeAuction()).find("robust"), std::string::npos);
}

TEST(CertifyTest, WriteCheckCertifiedNonRobust) {
  Workload workload = MakeSmallBank();
  Workload wc_only;
  wc_only.name = "WC";
  wc_only.schema = workload.schema;
  wc_only.programs.push_back(workload.programs[4]);
  SearchOptions options;
  options.domain_size = 1;
  CertificationOutcome outcome =
      CertifyRobustness(wc_only, AnalysisSettings::AttrDepFk(), options);
  EXPECT_FALSE(outcome.detector_robust);
  ASSERT_TRUE(outcome.witness.has_value());
  EXPECT_TRUE(outcome.IsCertifiedNonRobust());
  std::string description = outcome.Describe(wc_only);
  EXPECT_NE(description.find("certified"), std::string::npos);
}

TEST(CertifyTest, WitnessGuidedSearchFindsSmallBankAnomalyQuickly) {
  // {Am, Bal}: the witness cycle names exactly the participating programs,
  // so the guided phase certifies the rejection with few schedules.
  Workload workload = MakeSmallBank();
  Workload am_bal;
  am_bal.name = "AmBal";
  am_bal.schema = workload.schema;
  am_bal.programs.push_back(workload.programs[0]);
  am_bal.programs.push_back(workload.programs[1]);
  SearchOptions options;
  options.domain_size = 2;
  CertificationOutcome outcome =
      CertifyRobustness(am_bal, AnalysisSettings::AttrDepFk(), options);
  EXPECT_TRUE(outcome.IsCertifiedNonRobust());
  EXPECT_GT(outcome.search_stats.bindings_checked, 0);
}

TEST(CertifyTest, DeliveryIsPossibleFalseNegativeUnderTinyBudget) {
  // With a search budget too small to exhaust the space, the outcome is
  // inconclusive: rejected by the detector, no counterexample found.
  Workload workload = MakeTpcc();
  Workload delivery_only;
  delivery_only.name = "Delivery";
  delivery_only.schema = workload.schema;
  delivery_only.programs.push_back(workload.programs[3]);
  SearchOptions options;
  options.domain_size = 1;
  options.enumerate_pred_subsets = false;
  options.max_schedules = 10;  // deliberately tiny
  CertificationOutcome outcome =
      CertifyRobustness(delivery_only, AnalysisSettings::AttrDepFk(), options);
  EXPECT_FALSE(outcome.detector_robust);
  if (!outcome.counterexample.has_value()) {
    EXPECT_TRUE(outcome.IsPossibleFalseNegative());
    EXPECT_NE(outcome.Describe(delivery_only).find("false negative"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mvrc
