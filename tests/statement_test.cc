#include "btp/statement.h"

#include <gtest/gtest.h>

namespace mvrc {
namespace {

class StatementTest : public ::testing::Test {
 protected:
  StatementTest() {
    rel_ = schema_.AddRelation("Bids", {"buyerId", "bid"}, {"buyerId"});
  }
  Schema schema_;
  RelationId rel_ = -1;
};

TEST_F(StatementTest, InsertHasFullWriteSetAndUndefinedReads) {
  Statement q = Statement::Insert("q6", schema_, rel_);
  EXPECT_EQ(q.type(), StatementType::kInsert);
  ASSERT_TRUE(q.write_set().has_value());
  EXPECT_EQ(*q.write_set(), schema_.relation(rel_).AllAttrs());
  EXPECT_FALSE(q.read_set().has_value());
  EXPECT_FALSE(q.pread_set().has_value());
}

TEST_F(StatementTest, KeySelectSetsOnlyReadSet) {
  Statement q = Statement::KeySelect("q4", schema_, rel_, AttrSet{1});
  EXPECT_EQ(q.type(), StatementType::kKeySelect);
  EXPECT_EQ(*q.read_set(), AttrSet{1});
  EXPECT_FALSE(q.write_set().has_value());
  EXPECT_FALSE(q.pread_set().has_value());
}

TEST_F(StatementTest, KeySelectAllowsEmptyReadSet) {
  Statement q = Statement::KeySelect("q", schema_, rel_, AttrSet{});
  ASSERT_TRUE(q.read_set().has_value());
  EXPECT_TRUE(q.read_set()->empty());
}

TEST_F(StatementTest, PredSelectSetsPReadSet) {
  Statement q = Statement::PredSelect("q2", schema_, rel_, AttrSet{1}, AttrSet{1});
  EXPECT_EQ(q.type(), StatementType::kPredSelect);
  EXPECT_EQ(*q.pread_set(), AttrSet{1});
  EXPECT_EQ(*q.read_set(), AttrSet{1});
  EXPECT_FALSE(q.write_set().has_value());
}

TEST_F(StatementTest, KeyUpdateKeepsReadAndWriteSets) {
  Statement q = Statement::KeyUpdate("q5", schema_, rel_, AttrSet{}, AttrSet{1});
  EXPECT_EQ(q.type(), StatementType::kKeyUpdate);
  EXPECT_TRUE(q.read_set()->empty());
  EXPECT_EQ(*q.write_set(), AttrSet{1});
  EXPECT_FALSE(q.pread_set().has_value());
}

TEST_F(StatementTest, DeletesWriteAllAttributes) {
  Statement key_del = Statement::KeyDelete("qd", schema_, rel_);
  EXPECT_EQ(*key_del.write_set(), schema_.relation(rel_).AllAttrs());
  EXPECT_FALSE(key_del.read_set().has_value());

  Statement pred_del = Statement::PredDelete("qpd", schema_, rel_, AttrSet{0});
  EXPECT_EQ(*pred_del.write_set(), schema_.relation(rel_).AllAttrs());
  EXPECT_EQ(*pred_del.pread_set(), AttrSet{0});
  EXPECT_FALSE(pred_del.read_set().has_value());
}

TEST_F(StatementTest, TypePredicates) {
  EXPECT_TRUE(IsKeyBased(StatementType::kInsert));
  EXPECT_TRUE(IsKeyBased(StatementType::kKeySelect));
  EXPECT_TRUE(IsKeyBased(StatementType::kKeyUpdate));
  EXPECT_TRUE(IsKeyBased(StatementType::kKeyDelete));
  EXPECT_FALSE(IsKeyBased(StatementType::kPredSelect));

  EXPECT_TRUE(IsPredicateBased(StatementType::kPredSelect));
  EXPECT_TRUE(IsPredicateBased(StatementType::kPredUpdate));
  EXPECT_TRUE(IsPredicateBased(StatementType::kPredDelete));
  EXPECT_FALSE(IsPredicateBased(StatementType::kKeyUpdate));

  EXPECT_TRUE(WritesTuples(StatementType::kInsert));
  EXPECT_TRUE(WritesTuples(StatementType::kPredDelete));
  EXPECT_FALSE(WritesTuples(StatementType::kKeySelect));
  EXPECT_FALSE(WritesTuples(StatementType::kPredSelect));
}

TEST_F(StatementTest, ToStringMatchesPaperNotation) {
  EXPECT_STREQ(ToString(StatementType::kInsert), "ins");
  EXPECT_STREQ(ToString(StatementType::kKeySelect), "key sel");
  EXPECT_STREQ(ToString(StatementType::kPredSelect), "pred sel");
  EXPECT_STREQ(ToString(StatementType::kKeyUpdate), "key upd");
  EXPECT_STREQ(ToString(StatementType::kPredUpdate), "pred upd");
  EXPECT_STREQ(ToString(StatementType::kKeyDelete), "key del");
  EXPECT_STREQ(ToString(StatementType::kPredDelete), "pred del");
}

TEST_F(StatementTest, DebugString) {
  Statement q = Statement::PredSelect("q2", schema_, rel_, AttrSet{1}, AttrSet{1});
  EXPECT_EQ(q.ToDebugString(schema_), "q2: pred sel Bids PRead={bid} Read={bid}");
}

TEST_F(StatementTest, OrEmptyAccessors) {
  Statement q = Statement::Insert("q", schema_, rel_);
  EXPECT_TRUE(q.read_or_empty().empty());
  EXPECT_TRUE(q.pread_or_empty().empty());
  EXPECT_EQ(q.write_or_empty(), schema_.relation(rel_).AllAttrs());
}

}  // namespace
}  // namespace mvrc
