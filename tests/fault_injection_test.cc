// The fault-injection registry must be exactly as deterministic as the
// matrix test assumes: a point armed at hit N fires on hit N (and the
// times-1 hits after it), never before, never after; disarmed points cost
// nothing and count nothing; and the spec grammar the daemon's --fault=
// flag exposes parses precisely the schedules Arm() accepts.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "util/fault_injection.h"

namespace mvrc {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  // The global registry is process-wide state shared with every other test
  // in the binary; leave it clean in both directions.
  void SetUp() override { FaultInjection::Global().Reset(); }
  void TearDown() override { FaultInjection::Global().Reset(); }
};

TEST_F(FaultInjectionTest, CatalogIsClosedAndSorted) {
  std::span<const char* const> points = RegisteredFaultPoints();
  const std::set<std::string> names(points.begin(), points.end());
  EXPECT_EQ(names.size(), points.size()) << "duplicate fault point";
  // The durability and network code paths cover exactly these failure
  // modes; the fault-matrix test (persist) and the net fault tests iterate
  // this catalog, so growing it means growing those tests.
  EXPECT_EQ(names, (std::set<std::string>{"alloc.fail", "crash.after_n_writes",
                                          "fs.fsync_fail", "fs.write_fail",
                                          "fs.write_short", "net.accept_fail",
                                          "net.read_reset", "net.write_short",
                                          "net.write_stall"}));
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end(),
                             [](const char* a, const char* b) {
                               return std::string_view(a) < std::string_view(b);
                             }));
}

TEST_F(FaultInjectionTest, DisarmedNeverFiresAndNeverCounts) {
  FaultInjection faults;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));
  EXPECT_EQ(faults.hits("fs.write_fail"), 0);
  EXPECT_EQ(faults.fired(), 0);
}

TEST_F(FaultInjectionTest, FiresExactlyOnTheArmedHit) {
  FaultInjection faults;
  faults.Arm("fs.write_fail", /*fire_at=*/3);
  EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));  // hit 1
  EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));  // hit 2
  EXPECT_TRUE(faults.ShouldFail("fs.write_fail"));   // hit 3: fires
  EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));  // hit 4: schedule spent
  EXPECT_EQ(faults.hits("fs.write_fail"), 4);
  EXPECT_EQ(faults.fired(), 1);
}

TEST_F(FaultInjectionTest, TimesExtendsTheFiringWindow) {
  FaultInjection faults;
  faults.Arm("fs.fsync_fail", /*fire_at=*/2, /*times=*/3);
  EXPECT_FALSE(faults.ShouldFail("fs.fsync_fail"));
  EXPECT_TRUE(faults.ShouldFail("fs.fsync_fail"));
  EXPECT_TRUE(faults.ShouldFail("fs.fsync_fail"));
  EXPECT_TRUE(faults.ShouldFail("fs.fsync_fail"));
  EXPECT_FALSE(faults.ShouldFail("fs.fsync_fail"));
  EXPECT_EQ(faults.fired(), 3);
}

TEST_F(FaultInjectionTest, PointsCountIndependently) {
  FaultInjection faults;
  faults.Arm("fs.write_fail", 1);
  faults.Arm("alloc.fail", 2);
  EXPECT_TRUE(faults.ShouldFail("fs.write_fail"));
  EXPECT_FALSE(faults.ShouldFail("alloc.fail"));  // its own hit 1
  EXPECT_TRUE(faults.ShouldFail("alloc.fail"));   // its own hit 2
  EXPECT_EQ(faults.hits("fs.write_fail"), 1);
  EXPECT_EQ(faults.hits("alloc.fail"), 2);
}

TEST_F(FaultInjectionTest, RearmRestartsTheHitCount) {
  FaultInjection faults;
  faults.Arm("fs.write_short", 2);
  EXPECT_FALSE(faults.ShouldFail("fs.write_short"));
  faults.Arm("fs.write_short", 2);  // replace the schedule
  EXPECT_FALSE(faults.ShouldFail("fs.write_short"));
  EXPECT_TRUE(faults.ShouldFail("fs.write_short"));
}

TEST_F(FaultInjectionTest, ResetDisarmsEverything) {
  FaultInjection faults;
  faults.Arm("fs.write_fail", 1);
  faults.Reset();
  EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));
  EXPECT_EQ(faults.hits("fs.write_fail"), 0);
  EXPECT_EQ(faults.fired(), 0);
}

TEST_F(FaultInjectionTest, ArmFromSpecSingleAndWindowed) {
  FaultInjection faults;
  ASSERT_TRUE(faults.ArmFromSpec("fs.write_fail@2").ok());
  EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));
  EXPECT_TRUE(faults.ShouldFail("fs.write_fail"));
  EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));

  FaultInjection windowed;
  ASSERT_TRUE(windowed.ArmFromSpec("alloc.fail@1*2").ok());
  EXPECT_TRUE(windowed.ShouldFail("alloc.fail"));
  EXPECT_TRUE(windowed.ShouldFail("alloc.fail"));
  EXPECT_FALSE(windowed.ShouldFail("alloc.fail"));
}

TEST_F(FaultInjectionTest, ArmFromSpecCommaList) {
  FaultInjection faults;
  ASSERT_TRUE(faults.ArmFromSpec("fs.write_fail@1,fs.fsync_fail@2*2").ok());
  EXPECT_TRUE(faults.ShouldFail("fs.write_fail"));
  EXPECT_FALSE(faults.ShouldFail("fs.fsync_fail"));
  EXPECT_TRUE(faults.ShouldFail("fs.fsync_fail"));
  EXPECT_TRUE(faults.ShouldFail("fs.fsync_fail"));
}

TEST_F(FaultInjectionTest, ArmFromSpecRejectsMalformedSpecs) {
  FaultInjection faults;
  EXPECT_FALSE(faults.ArmFromSpec("fs.write_fail").ok());         // no @N
  EXPECT_FALSE(faults.ArmFromSpec("fs.write_fail@").ok());        // empty N
  EXPECT_FALSE(faults.ArmFromSpec("fs.write_fail@zero").ok());    // not a number
  EXPECT_FALSE(faults.ArmFromSpec("fs.write_fail@0").ok());       // hits are 1-based
  EXPECT_FALSE(faults.ArmFromSpec("fs.write_fail@1*0").ok());     // empty window
  EXPECT_FALSE(faults.ArmFromSpec("no.such.point@1").ok());       // not in catalog
  // A rejected spec must not leave a partial arming behind, even when the
  // bad entry comes after good ones.
  EXPECT_FALSE(faults.ArmFromSpec("fs.write_fail@1,no.such.point@2").ok());
  EXPECT_FALSE(faults.ShouldFail("fs.write_fail"));
}

TEST_F(FaultInjectionTest, GlobalMacroReachesTheGlobalRegistry) {
  FaultInjection::Global().Arm("alloc.fail", 1);
  EXPECT_TRUE(MVRC_FAULT_POINT("alloc.fail"));
  EXPECT_FALSE(MVRC_FAULT_POINT("alloc.fail"));
  EXPECT_EQ(FaultInjection::Global().fired(), 1);
}

}  // namespace
}  // namespace mvrc
