// Counterexample search tests: certify that the subsets Algorithm 2 rejects
// for SmallBank are genuinely non-robust (the paper's §7.2 completeness
// comparison against the exact characterization of [46]), and that the
// search agrees with the detector on the running example.

#include "search/counterexample.h"

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "mvcc/serialization_graph.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

// Indices into MakeSmallBank(): Am=0, Bal=1, DC=2, TS=3, WC=4.
std::vector<Ltp> SmallBankLtps(const Workload& workload, std::vector<int> programs) {
  std::vector<Btp> subset;
  for (int p : programs) subset.push_back(workload.programs[p]);
  return UnfoldAtMost2(subset);
}

void ExpectCounterexampleIsValid(const Workload& workload, const Counterexample& ce) {
  Schedule schedule = ce.ToSchedule();
  EXPECT_TRUE(schedule.IsMvrcAllowed());
  SerializationGraph graph = SerializationGraph::Build(schedule);
  EXPECT_FALSE(graph.IsConflictSerializable());
  // Theorem 4.2: since the schedule is mvrc-allowed, all its cycles must be
  // type-II — a counterexample can never contradict the theorem.
  EXPECT_TRUE(graph.AllCyclesTypeII());
  EXPECT_FALSE(ce.Describe(workload.schema).empty());
}

TEST(CounterexampleSmallBankTest, TwoWriteChecksRaceOnBalance) {
  // {WC} is not robust: two WriteChecks on the same customer both read the
  // checking balance, then both write it.
  Workload workload = MakeSmallBank();
  SearchOptions options;
  options.domain_size = 1;
  std::optional<Counterexample> ce =
      FindCounterexample(SmallBankLtps(workload, {4}), options);
  ASSERT_TRUE(ce.has_value());
  ExpectCounterexampleIsValid(workload, *ce);
}

TEST(CounterexampleSmallBankTest, AmalgamateBalanceAnomaly) {
  // {Am, Bal} is not robust: Balance can see the source account drained and
  // the target not yet credited.
  Workload workload = MakeSmallBank();
  SearchOptions options;
  options.domain_size = 2;
  std::optional<Counterexample> ce =
      FindCounterexample(SmallBankLtps(workload, {0, 1}), options);
  ASSERT_TRUE(ce.has_value());
  ExpectCounterexampleIsValid(workload, *ce);
}

TEST(CounterexampleSmallBankTest, BalanceDcTsNeedsFourTransactions) {
  // {Bal, DC, TS} is not robust, but the smallest counterexample takes two
  // Balance instances plus one TransactSavings and one DepositChecking.
  Workload workload = MakeSmallBank();
  std::vector<Ltp> ltps = SmallBankLtps(workload, {1, 2, 3});  // Bal, DC, TS
  // No counterexample with 2 or 3 transactions.
  SearchOptions small;
  small.domain_size = 1;
  small.min_txns = 2;
  small.max_txns = 3;
  EXPECT_FALSE(FindCounterexample(ltps, small).has_value());
  // Found with the multiset {Bal, Bal, TS, DC}.
  SearchOptions four;
  four.domain_size = 1;
  four.fixed_multiset = {0, 0, 2, 1};  // Bal, Bal, TS, DC (indices into ltps)
  four.max_schedules = 5'000'000;
  std::optional<Counterexample> ce = FindCounterexample(ltps, four);
  ASSERT_TRUE(ce.has_value());
  ExpectCounterexampleIsValid(workload, *ce);
}

TEST(CounterexampleSmallBankTest, RobustSubsetsHaveNoSmallCounterexample) {
  // {Am, DC, TS}, {Bal, DC}, {Bal, TS}: detected robust by Algorithm 2; the
  // bounded search agrees (2 transactions, 2 tuples per relation).
  Workload workload = MakeSmallBank();
  for (std::vector<int> subset :
       {std::vector<int>{0, 2, 3}, std::vector<int>{1, 2}, std::vector<int>{1, 3}}) {
    SearchStats stats;
    SearchOptions options;
    options.domain_size = 2;
    EXPECT_FALSE(
        FindCounterexample(SmallBankLtps(workload, subset), options, &stats).has_value());
    EXPECT_FALSE(stats.budget_exhausted);
  }
}

TEST(CounterexampleAuctionTest, AuctionHasNoTwoTxnCounterexample) {
  // The full Auction benchmark is robust (Figure 6); the search over two
  // transactions with predicate subsets confirms no witness exists.
  Workload workload = MakeAuction();
  std::vector<Ltp> ltps = UnfoldAtMost2(workload.programs);
  SearchStats stats;
  SearchOptions options;
  options.domain_size = 2;
  EXPECT_FALSE(FindCounterexample(ltps, options, &stats).has_value());
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_GT(stats.bindings_checked, 0);
}

TEST(CounterexampleAuctionTest, WithoutForeignKeysPlaceBidRaces) {
  // Dropping the FK constraints from PlaceBid makes two PlaceBids race on
  // the same Bids tuple while updating different buyers: the summary-graph
  // analysis without FKs rejects {PB}, and a real counterexample exists.
  Workload workload = MakeAuction();
  const Btp& place_bid = workload.programs[1];
  Btp stripped("PlaceBidNoFk");
  std::vector<StmtId> ids;
  for (int q = 0; q < place_bid.num_statements(); ++q) {
    ids.push_back(stripped.AddStatement(place_bid.statement(q)));
  }
  stripped.Finish(stripped.Seq({stripped.Stmt(ids[0]), stripped.Stmt(ids[1]),
                                stripped.Optional(stripped.Stmt(ids[2])),
                                stripped.Stmt(ids[3])}));
  std::vector<Ltp> ltps = UnfoldAtMost2(stripped);
  SearchOptions options;
  options.domain_size = 2;
  std::optional<Counterexample> ce = FindCounterexample(ltps, options);
  ASSERT_TRUE(ce.has_value());
  ExpectCounterexampleIsValid(workload, *ce);
}

TEST(CounterexampleApiTest, StatsArePopulated) {
  Workload workload = MakeSmallBank();
  SearchStats stats;
  SearchOptions options;
  options.domain_size = 1;
  FindCounterexample(SmallBankLtps(workload, {4}), options, &stats);
  EXPECT_GT(stats.bindings_checked, 0);
}

}  // namespace
}  // namespace mvrc
