#include "btp/unfold.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workloads/auction.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

// Sequence of statement labels of an LTP, e.g. "q3;q4;q6".
std::string Labels(const Ltp& ltp) {
  std::string out;
  for (int i = 0; i < ltp.size(); ++i) {
    if (i > 0) out += ";";
    out += ltp.stmt(i).label();
  }
  return out;
}

class UnfoldFixture : public ::testing::Test {
 protected:
  UnfoldFixture() {
    rel_ = schema_.AddRelation("R", {"a", "b"}, {"a"});
  }

  Statement Sel(const std::string& label) {
    return Statement::KeySelect(label, schema_, rel_, AttrSet{1});
  }

  Schema schema_;
  RelationId rel_ = -1;
};

TEST_F(UnfoldFixture, LinearProgramYieldsSingleLtpWithOriginalName) {
  Btp p("Lin");
  p.AddStatement(Sel("q1"));
  p.AddStatement(Sel("q2"));
  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 1u);
  EXPECT_EQ(ltps[0].name(), "Lin");
  EXPECT_EQ(Labels(ltps[0]), "q1;q2");
  EXPECT_TRUE(p.IsLinear());
}

TEST_F(UnfoldFixture, OptionalUnfoldsBothWays) {
  Btp p("Opt");
  StmtId q1 = p.AddStatement(Sel("q1"));
  StmtId q2 = p.AddStatement(Sel("q2"));
  StmtId q3 = p.AddStatement(Sel("q3"));
  p.Finish(p.Seq({p.Stmt(q1), p.Optional(p.Stmt(q2)), p.Stmt(q3)}));
  EXPECT_FALSE(p.IsLinear());
  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 2u);
  EXPECT_EQ(Labels(ltps[0]), "q1;q2;q3");  // inner branch first
  EXPECT_EQ(Labels(ltps[1]), "q1;q3");
  EXPECT_EQ(ltps[0].name(), "Opt1");
  EXPECT_EQ(ltps[1].name(), "Opt2");
}

TEST_F(UnfoldFixture, ChoiceUnfoldsBothBranches) {
  Btp p("Ch");
  StmtId q1 = p.AddStatement(Sel("q1"));
  StmtId q2 = p.AddStatement(Sel("q2"));
  p.Finish(p.Choice(p.Stmt(q1), p.Stmt(q2)));
  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 2u);
  EXPECT_EQ(Labels(ltps[0]), "q1");
  EXPECT_EQ(Labels(ltps[1]), "q2");
}

TEST_F(UnfoldFixture, LoopUnfoldsZeroOneTwo) {
  Btp p("Lp");
  StmtId q1 = p.AddStatement(Sel("q1"));
  p.Finish(p.Loop(p.Stmt(q1)));
  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 3u);
  EXPECT_EQ(Labels(ltps[0]), "");
  EXPECT_EQ(Labels(ltps[1]), "q1");
  EXPECT_EQ(Labels(ltps[2]), "q1;q1");
}

TEST_F(UnfoldFixture, LoopWithInnerBranchTakesCrossProduct) {
  // loop(q1 | q2): 0 reps: 1; 1 rep: 2; 2 reps: 4 -> 7 unfoldings total.
  Btp p("LpCh");
  StmtId q1 = p.AddStatement(Sel("q1"));
  StmtId q2 = p.AddStatement(Sel("q2"));
  p.Finish(p.Loop(p.Choice(p.Stmt(q1), p.Stmt(q2))));
  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 7u);
  std::set<std::string> seqs;
  for (const Ltp& ltp : ltps) seqs.insert(Labels(ltp));
  EXPECT_EQ(seqs, (std::set<std::string>{"", "q1", "q2", "q1;q1", "q1;q2", "q2;q1",
                                         "q2;q2"}));
}

TEST_F(UnfoldFixture, NestedLoopCounts) {
  // loop(loop(q1)) -> outer 0 reps: 1; outer 1 rep: inner has 3 unfoldings;
  // outer 2 reps: 3x3 = 9. Total 13.
  Btp p("Nest");
  StmtId q1 = p.AddStatement(Sel("q1"));
  p.Finish(p.Loop(p.Loop(p.Stmt(q1))));
  EXPECT_EQ(UnfoldAtMost2(p).size(), 13u);
}

TEST_F(UnfoldFixture, ConstraintsBindWithinLoopIteration) {
  // loop(qa; qb) with constraint qa = f(qb): in the 2-repetition unfolding
  // each iteration's qb must bind to its own iteration's qa.
  Schema schema;
  RelationId parent = schema.AddRelation("P", {"p"}, {"p"});
  RelationId child = schema.AddRelation("C", {"c", "p"}, {"c"});
  ForeignKeyId f = schema.AddForeignKey("f", child, {"p"}, parent);

  Btp p("LpFk");
  StmtId qa = p.AddStatement(Statement::KeyUpdate("qa", schema, parent, AttrSet{0},
                                                  AttrSet{0}));
  StmtId qb = p.AddStatement(Statement::KeySelect("qb", schema, child, AttrSet{0}));
  p.Finish(p.Loop(p.Seq({p.Stmt(qa), p.Stmt(qb)})));
  p.AddFkConstraint(schema, qa, f, qb);

  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 3u);
  // Two-repetition unfolding: positions qa(0) qb(1) qa(2) qb(3).
  const Ltp& two = ltps[2];
  ASSERT_EQ(two.size(), 4);
  EXPECT_TRUE(two.HasConstraint(0, f, 1));
  EXPECT_TRUE(two.HasConstraint(2, f, 3));
  EXPECT_FALSE(two.HasConstraint(0, f, 3));
  EXPECT_FALSE(two.HasConstraint(2, f, 1));
  EXPECT_EQ(two.constraints().size(), 2u);
}

TEST_F(UnfoldFixture, ConstraintBindsLoopChildToOuterParent) {
  // qa outside the loop, qb inside: both iterations bind to the outer qa.
  Schema schema;
  RelationId parent = schema.AddRelation("P", {"p"}, {"p"});
  RelationId child = schema.AddRelation("C", {"c", "p"}, {"c"});
  ForeignKeyId f = schema.AddForeignKey("f", child, {"p"}, parent);

  Btp p("OuterFk");
  StmtId qa = p.AddStatement(Statement::Insert("qa", schema, parent));
  StmtId qb = p.AddStatement(Statement::KeySelect("qb", schema, child, AttrSet{0}));
  p.Finish(p.Seq({p.Stmt(qa), p.Loop(p.Stmt(qb))}));
  p.AddFkConstraint(schema, qa, f, qb);

  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 3u);
  const Ltp& two = ltps[2];  // qa(0) qb(1) qb(2)
  ASSERT_EQ(two.size(), 3);
  EXPECT_TRUE(two.HasConstraint(0, f, 1));
  EXPECT_TRUE(two.HasConstraint(0, f, 2));
}

TEST_F(UnfoldFixture, ConstraintDroppedWhenParentAbsent) {
  // Parent statement inside an optional branch: the unfolding without it has
  // no binding for the constraint.
  Schema schema;
  RelationId parent = schema.AddRelation("P", {"p"}, {"p"});
  RelationId child = schema.AddRelation("C", {"c", "p"}, {"c"});
  ForeignKeyId f = schema.AddForeignKey("f", child, {"p"}, parent);

  Btp p("OptFk");
  StmtId qa = p.AddStatement(Statement::KeyUpdate("qa", schema, parent, AttrSet{},
                                                  AttrSet{0}));
  StmtId qb = p.AddStatement(Statement::KeySelect("qb", schema, child, AttrSet{0}));
  p.Finish(p.Seq({p.Optional(p.Stmt(qa)), p.Stmt(qb)}));
  p.AddFkConstraint(schema, qa, f, qb);

  std::vector<Ltp> ltps = UnfoldAtMost2(p);
  ASSERT_EQ(ltps.size(), 2u);
  EXPECT_EQ(ltps[0].constraints().size(), 1u);  // with qa
  EXPECT_TRUE(ltps[1].constraints().empty());   // without qa
}

TEST(UnfoldWorkloads, PlaceBidMatchesPaperRunningExample) {
  Workload auction = MakeAuction();
  std::vector<Ltp> ltps = UnfoldAtMost2(auction.programs);
  ASSERT_EQ(ltps.size(), 3u);
  EXPECT_EQ(ltps[0].name(), "FindBids");
  EXPECT_EQ(Labels(ltps[0]), "q1;q2");
  EXPECT_EQ(ltps[1].name(), "PlaceBid1");
  EXPECT_EQ(Labels(ltps[1]), "q3;q4;q5;q6");
  EXPECT_EQ(ltps[2].name(), "PlaceBid2");
  EXPECT_EQ(Labels(ltps[2]), "q3;q4;q6");
}

TEST(UnfoldWorkloads, TpccUnfoldsToThirteenLtps) {
  // Paper §6.1: "for TPC-C the number of transaction programs increases from
  // 5 to 13".
  Workload tpcc = MakeTpcc();
  EXPECT_EQ(UnfoldAtMost2(tpcc.programs).size(), 13u);
}

TEST(UnfoldWorkloads, SourceProgramNamesPreserved) {
  Workload tpcc = MakeTpcc();
  for (const Ltp& ltp : UnfoldAtMost2(tpcc.programs)) {
    bool found = false;
    for (const Btp& program : tpcc.programs) {
      if (program.name() == ltp.source_program()) found = true;
    }
    EXPECT_TRUE(found) << ltp.name();
  }
}

}  // namespace
}  // namespace mvrc
