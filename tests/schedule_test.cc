#include "mvcc/schedule.h"

#include <gtest/gtest.h>

namespace mvrc {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  ScheduleTest() {
    rel_ = schema_.AddRelation("A", {"k", "v"}, {"k"});
  }

  // T reads tuple 0 then commits.
  Transaction Reader(int id, int tuple = 0) {
    Transaction txn(id);
    txn.Add(OpKind::kRead, rel_, tuple, AttrSet{1});
    txn.FinishWithCommit();
    return txn;
  }

  // T updates tuple 0 (atomic R;W chunk) then commits.
  Transaction Updater(int id, int tuple = 0) {
    Transaction txn(id);
    int r = txn.Add(OpKind::kRead, rel_, tuple, AttrSet{1});
    int w = txn.Add(OpKind::kWrite, rel_, tuple, AttrSet{1});
    txn.AddChunk(r, w);
    txn.FinishWithCommit();
    return txn;
  }

  Schema schema_;
  RelationId rel_ = -1;
};

TEST_F(ScheduleTest, SerialScheduleIsValid) {
  Result<Schedule> result = Schedule::Serial({Updater(0), Reader(1)});
  ASSERT_TRUE(result.ok()) << result.error();
  const Schedule& schedule = result.value();
  EXPECT_TRUE(schedule.IsMvrcAllowed());
  // The reader observes the updater's version.
  Version version = schedule.ReadVersion({1, 0});
  EXPECT_EQ(version.txn, 0);
}

TEST_F(ScheduleTest, ReadBeforeCommitObservesInit) {
  // R1[t] before T0's commit: reads the initial version.
  Transaction t0 = Updater(0);
  Transaction t1 = Reader(1);
  std::vector<OpRef> order{{0, 0}, {0, 1}, {1, 0}, {0, 2}, {1, 1}};
  Result<Schedule> result = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().ReadVersion({1, 0}).IsInit());
}

TEST_F(ScheduleTest, ReadLastCommittedPicksLatestCommit) {
  // Two updaters commit, then a read: observes the second committer.
  Transaction t0 = Updater(0);
  Transaction t1 = Updater(1);
  Transaction t2 = Reader(2);
  std::vector<OpRef> order{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}};
  Result<Schedule> result = Schedule::ReadLastCommitted({t0, t1, t2}, order);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().ReadVersion({2, 0}).txn, 1);
}

TEST_F(ScheduleTest, RejectsProgramOrderViolation) {
  Transaction t0 = Updater(0);
  std::vector<OpRef> order{{0, 1}, {0, 0}, {0, 2}};
  EXPECT_FALSE(Schedule::ReadLastCommitted({t0}, order).ok());
}

TEST_F(ScheduleTest, RejectsChunkInterleaving) {
  Transaction t0 = Updater(0);
  Transaction t1 = Reader(1);
  // T1's read lands between T0's chunked R and W.
  std::vector<OpRef> order{{0, 0}, {1, 0}, {0, 1}, {0, 2}, {1, 1}};
  Result<Schedule> result = Schedule::ReadLastCommitted({t0, t1}, order);
  EXPECT_FALSE(result.ok());
}

TEST_F(ScheduleTest, RejectsIncompleteOrder) {
  Transaction t0 = Updater(0);
  EXPECT_FALSE(Schedule::ReadLastCommitted({t0}, {{0, 0}, {0, 1}}).ok());
  EXPECT_FALSE(
      Schedule::ReadLastCommitted({t0}, {{0, 0}, {0, 0}, {0, 1}, {0, 2}}).ok());
}

TEST_F(ScheduleTest, DetectsDirtyWrite) {
  // T0 writes, T1 writes the same tuple before T0 commits: dirty write; the
  // schedule is structurally valid but not allowed under mvrc.
  Transaction t0(0);
  t0.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  std::vector<OpRef> order{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  Result<Schedule> result = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().ExhibitsDirtyWrite());
  EXPECT_FALSE(result.value().IsMvrcAllowed());
}

TEST_F(ScheduleTest, NoDirtyWriteWhenSequential) {
  Result<Schedule> result = Schedule::Serial({Updater(0), Updater(1)});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().ExhibitsDirtyWrite());
}

TEST_F(ScheduleTest, InsertMakesTupleVisible) {
  Transaction t0(0);
  t0.Add(OpKind::kInsert, rel_, 5, AttrSet::FirstN(2));
  t0.FinishWithCommit();
  Transaction t1 = Reader(1, 5);
  // Read after the insert's commit: fine.
  Result<Schedule> ok = Schedule::Serial({t0, t1});
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_EQ(ok.value().ReadVersion({1, 0}).txn, 0);
  // Read before the insert's commit: observes the unborn version -> invalid.
  std::vector<OpRef> order{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  EXPECT_FALSE(Schedule::ReadLastCommitted({t0, t1}, order).ok());
}

TEST_F(ScheduleTest, ReadAfterDeleteIsInvalid) {
  Transaction t0(0);
  t0.Add(OpKind::kDelete, rel_, 0, AttrSet::FirstN(2));
  t0.FinishWithCommit();
  Transaction t1 = Reader(1, 0);
  EXPECT_FALSE(Schedule::Serial({t0, t1}).ok());
  // Reading before the delete commits is fine (observes init).
  std::vector<OpRef> order{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Result<Schedule> result = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().ReadVersion({1, 0}).IsInit());
}

TEST_F(ScheduleTest, RejectsWriteAfterCommittedDelete) {
  Transaction t0(0);
  t0.Add(OpKind::kDelete, rel_, 0, AttrSet::FirstN(2));
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  // Delete commits first: the dead version must be last -> invalid.
  EXPECT_FALSE(Schedule::Serial({t0, t1}).ok());
}

TEST_F(ScheduleTest, RejectsDoubleInsert) {
  Transaction t0(0);
  t0.Add(OpKind::kInsert, rel_, 0, AttrSet::FirstN(2));
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kInsert, rel_, 0, AttrSet::FirstN(2));
  t1.FinishWithCommit();
  EXPECT_FALSE(Schedule::Serial({t0, t1}).ok());
}

TEST_F(ScheduleTest, VsetTracksPredicateReadPosition) {
  // PR before T0 commits observes init; PR after observes T0's version.
  Transaction t0 = Updater(0);
  Transaction t1(1);
  t1.Add(OpKind::kPredRead, rel_, -1, AttrSet{1});
  t1.FinishWithCommit();
  std::vector<OpRef> order{{1, 0}, {0, 0}, {0, 1}, {0, 2}, {1, 1}};
  Result<Schedule> result = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().VsetVersion({1, 0}, rel_, 0).IsInit());

  Result<Schedule> serial = Schedule::Serial({t0, t1});
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial.value().VsetVersion({1, 0}, rel_, 0).txn, 0);
}

TEST_F(ScheduleTest, VersionBeforeFollowsCommitOrder) {
  Result<Schedule> result = Schedule::Serial({Updater(0), Updater(1)});
  ASSERT_TRUE(result.ok());
  const Schedule& schedule = result.value();
  Version v0 = schedule.WriteVersion({0, 1});
  Version v1 = schedule.WriteVersion({1, 1});
  EXPECT_TRUE(schedule.VersionBefore(Version::Init(), v0));
  EXPECT_TRUE(schedule.VersionBefore(v0, v1));
  EXPECT_FALSE(schedule.VersionBefore(v1, v0));
  EXPECT_FALSE(schedule.VersionBefore(v0, v0));
}

TEST_F(ScheduleTest, TransactionValidateRejectsDoubleRead) {
  Transaction txn(0);
  txn.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  txn.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  txn.FinishWithCommit();
  EXPECT_FALSE(txn.Validate().ok());
}

TEST_F(ScheduleTest, ToStringRendersPaperNotation) {
  Result<Schedule> result = Schedule::Serial({Updater(0)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().ToString(schema_), "R0[A#0] W0[A#0] C0");
}

TEST_F(ScheduleTest, TuplesOfCollectsMentionedTuples) {
  Result<Schedule> result = Schedule::Serial({Updater(0, 2), Reader(1, 7)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().TuplesOf(rel_), (std::vector<int>{2, 7}));
}

}  // namespace
}  // namespace mvrc
