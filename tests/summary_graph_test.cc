#include "summary/summary_graph.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "summary/build_summary.h"
#include "workloads/auction.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

// Finds an edge by program names and statement labels; returns whether it
// exists with the given flow class.
bool HasEdge(const SummaryGraph& graph, const std::string& from_program,
             const std::string& from_label, bool counterflow,
             const std::string& to_label, const std::string& to_program) {
  for (const SummaryEdge& edge : graph.edges()) {
    if (graph.program(edge.from_program).name() != from_program) continue;
    if (graph.program(edge.to_program).name() != to_program) continue;
    if (graph.program(edge.from_program).stmt(edge.from_occ).label() != from_label) {
      continue;
    }
    if (graph.program(edge.to_program).stmt(edge.to_occ).label() != to_label) continue;
    if (edge.counterflow != counterflow) continue;
    return true;
  }
  return false;
}

class AuctionSummaryTest : public ::testing::Test {
 protected:
  AuctionSummaryTest()
      : workload_(MakeAuction()),
        graph_(BuildSummaryGraph(workload_.programs, AnalysisSettings::AttrDepFk())) {}

  Workload workload_;
  SummaryGraph graph_;
};

TEST_F(AuctionSummaryTest, MatchesTable2Counts) {
  // Table 2: Auction has 3 unfolded programs and 17 edges, 1 counterflow.
  EXPECT_EQ(graph_.num_programs(), 3);
  EXPECT_EQ(graph_.num_edges(), 17);
  EXPECT_EQ(graph_.num_counterflow_edges(), 1);
}

TEST_F(AuctionSummaryTest, CounterflowEdgeIsFindBidsToPlaceBid1) {
  // The single counterflow edge is the predicate rw-antidependency from
  // FindBids' predicate read q2 to PlaceBid1's bid update q5 (Figure 4).
  EXPECT_TRUE(HasEdge(graph_, "FindBids", "q2", true, "q5", "PlaceBid1"));
}

TEST_F(AuctionSummaryTest, BuyerUpdatesConflictBetweenAllPrograms) {
  // Every pair of programs has a non-counterflow edge on Buyer(calls).
  EXPECT_TRUE(HasEdge(graph_, "FindBids", "q1", false, "q1", "FindBids"));
  EXPECT_TRUE(HasEdge(graph_, "FindBids", "q1", false, "q3", "PlaceBid1"));
  EXPECT_TRUE(HasEdge(graph_, "FindBids", "q1", false, "q3", "PlaceBid2"));
  EXPECT_TRUE(HasEdge(graph_, "PlaceBid1", "q3", false, "q1", "FindBids"));
  EXPECT_TRUE(HasEdge(graph_, "PlaceBid1", "q3", false, "q3", "PlaceBid2"));
  EXPECT_TRUE(HasEdge(graph_, "PlaceBid2", "q3", false, "q3", "PlaceBid2"));
}

TEST_F(AuctionSummaryTest, ForeignKeySuppressesKeySelectCounterflow) {
  // q4 -> q5 counterflow is ruled out by the f1 constraints (both PlaceBid
  // instantiations update the same Buyer first).
  EXPECT_FALSE(HasEdge(graph_, "PlaceBid1", "q4", true, "q5", "PlaceBid1"));
  EXPECT_FALSE(HasEdge(graph_, "PlaceBid2", "q4", true, "q5", "PlaceBid1"));
  // But the non-counterflow rw edge exists.
  EXPECT_TRUE(HasEdge(graph_, "PlaceBid1", "q4", false, "q5", "PlaceBid1"));
}

TEST_F(AuctionSummaryTest, WithoutForeignKeysCounterflowAppears) {
  SummaryGraph no_fk =
      BuildSummaryGraph(workload_.programs, AnalysisSettings::AttrDep());
  EXPECT_TRUE(HasEdge(no_fk, "PlaceBid1", "q4", true, "q5", "PlaceBid1"));
  EXPECT_EQ(no_fk.num_counterflow_edges(), 3);  // q2->q5 plus q4->q5 from both PBs
}

TEST_F(AuctionSummaryTest, NoEdgesOnLogInserts) {
  // ins -> ins admits no dependency (Table 1a).
  for (const SummaryEdge& edge : graph_.edges()) {
    const Statement& from = graph_.program(edge.from_program).stmt(edge.from_occ);
    const Statement& to = graph_.program(edge.to_program).stmt(edge.to_occ);
    EXPECT_FALSE(from.type() == StatementType::kInsert &&
                 to.type() == StatementType::kInsert);
  }
}

TEST_F(AuctionSummaryTest, ProgramGraphConnectivity) {
  Digraph program_graph = graph_.ProgramGraph();
  EXPECT_EQ(program_graph.num_nodes(), 3);
  Digraph::Reachability reach = program_graph.ComputeReachability();
  // All programs mutually reachable through the Buyer edges.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_TRUE(reach.At(i, j));
  }
}

TEST_F(AuctionSummaryTest, NonCounterflowProgramGraphDropsCfEdges) {
  Digraph nc = graph_.NonCounterflowProgramGraph();
  // 17 - 1 edges remain; the FindBids->PlaceBid1 arc still exists because a
  // parallel nc edge (q1->q3) connects the same programs.
  EXPECT_TRUE(nc.HasEdge(0, 1));
}

TEST_F(AuctionSummaryTest, DescribeEdge) {
  const SummaryEdge* cf_edge = nullptr;
  for (const SummaryEdge& edge : graph_.edges()) {
    if (edge.counterflow) cf_edge = &edge;
  }
  ASSERT_NE(cf_edge, nullptr);
  EXPECT_EQ(graph_.DescribeEdge(*cf_edge), "FindBids --q2->q5 (cf)--> PlaceBid1");
}

TEST_F(AuctionSummaryTest, DotOutputMentionsAllPrograms) {
  std::string dot = graph_.ToDot("auction");
  EXPECT_NE(dot.find("FindBids"), std::string::npos);
  EXPECT_NE(dot.find("PlaceBid1"), std::string::npos);
  EXPECT_NE(dot.find("PlaceBid2"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // counterflow edge
}

TEST_F(AuctionSummaryTest, DistinctStatementEdgesCollapseBranchVariants) {
  // PlaceBid1 and PlaceBid2 stem from the same source program, so their
  // parallel edges collapse at statement level: Buyer 9 -> 4 pairs, Bids
  // 8 -> 6 pairs (q4->q5 from both variants merge): 10 total.
  EXPECT_EQ(graph_.num_distinct_statement_edges(), 10);
}

TEST(SummaryGraphTest, LoopsInflateOccurrenceEdges) {
  // One program loop(q1) with q1 a key update: the 2-iteration unfolding has
  // two occurrences, giving 2x2 occurrence edges between the unfolding and
  // itself plus cross-variant pairs, but only one distinct statement pair
  // per program pair.
  Schema schema;
  RelationId rel = schema.AddRelation("R", {"k", "v"}, {"k"});
  Btp program("Lp");
  StmtId q = program.AddStatement(
      Statement::KeyUpdate("q1", schema, rel, AttrSet{1}, AttrSet{1}));
  program.Finish(program.Loop(program.Stmt(q)));
  SummaryGraph graph =
      BuildSummaryGraph(std::vector<Btp>{program}, AnalysisSettings::AttrDepFk());
  EXPECT_GT(graph.num_edges(), graph.num_distinct_statement_edges());
  // All edges collapse to the single (Lp, q1, nc, q1, Lp) tuple.
  EXPECT_EQ(graph.num_distinct_statement_edges(), 1);
}

TEST(SummaryGraphTest, InducedSubgraphEqualsDirectConstruction) {
  // Restricting the full graph to a subset of programs yields exactly the
  // graph Algorithm 1 builds for the subset alone (the basis of the
  // build-once subset analysis).
  Workload workload = MakeTpcc();
  for (AnalysisSettings settings :
       {AnalysisSettings::AttrDep(), AnalysisSettings::AttrDepFk()}) {
    SummaryGraph full = BuildSummaryGraph(workload.programs, settings);
    // Subset {Payment, OrderStatus, StockLevel} = BTP indices 1, 2, 4.
    std::vector<Btp> subset{workload.programs[1], workload.programs[2],
                            workload.programs[4]};
    SummaryGraph direct = BuildSummaryGraph(subset, settings);
    std::vector<bool> keep(full.num_programs(), false);
    for (int p = 0; p < full.num_programs(); ++p) {
      const std::string& source = full.program(p).source_program();
      keep[p] = source == "Payment" || source == "OrderStatus" ||
                source == "StockLevel";
    }
    SummaryGraph induced = full.InducedSubgraph(keep);
    ASSERT_EQ(induced.num_programs(), direct.num_programs());
    std::multiset<std::string> direct_edges, induced_edges;
    for (const SummaryEdge& edge : direct.edges()) {
      direct_edges.insert(direct.DescribeEdge(edge));
    }
    for (const SummaryEdge& edge : induced.edges()) {
      induced_edges.insert(induced.DescribeEdge(edge));
    }
    EXPECT_EQ(direct_edges, induced_edges) << settings.name();
  }
}

TEST(SummaryGraphTest, EdgeCountsEmptyGraph) {
  SummaryGraph graph({});
  EXPECT_EQ(graph.num_programs(), 0);
  EXPECT_EQ(graph.num_edges(), 0);
  EXPECT_EQ(graph.num_counterflow_edges(), 0);
}

}  // namespace
}  // namespace mvrc
