// End-to-end validation: the static verdicts of Algorithm 2 predict the
// behavior of real executions on the MVCC engine. Robust workloads never
// produce a non-serializable execution; non-robust ones do (with a fixed
// seed, deterministically).

#include "engine/random_tester.h"

#include <gtest/gtest.h>

#include "workloads/auction.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

Database SmallBankDb() {
  Database db(MakeSmallBank().schema);
  SeedSmallBank(&db, /*customers=*/2, /*initial_balance=*/100);
  return db;
}

Database AuctionDb() {
  Database db(MakeAuction().schema);
  SeedAuction(&db, /*buyers=*/2, /*initial_bid=*/10);
  return db;
}

TEST(RandomTesterSmallBank, RobustSubsetAmDcTsAlwaysSerializable) {
  RandomTestOptions options;
  options.rounds = 300;
  RandomTestReport report = RunRandomRounds(
      &SmallBankDb,
      [] {
        return std::vector<ConcreteProgram>{
            SmallBankAmalgamate(0, 1),
            SmallBankDepositChecking(0, 10),
            SmallBankTransactSavings(1, -5),
        };
      },
      options);
  EXPECT_EQ(report.rounds_run, 300);
  EXPECT_EQ(report.non_serializable_rounds, 0) << *report.first_anomaly;
}

TEST(RandomTesterSmallBank, RobustSubsetBalDcAlwaysSerializable) {
  RandomTestOptions options;
  options.rounds = 300;
  RandomTestReport report = RunRandomRounds(
      &SmallBankDb,
      [] {
        return std::vector<ConcreteProgram>{
            SmallBankBalance(0),
            SmallBankDepositChecking(0, 10),
            SmallBankDepositChecking(0, 20),
            SmallBankBalance(0),
        };
      },
      options);
  EXPECT_EQ(report.non_serializable_rounds, 0) << *report.first_anomaly;
}

TEST(RandomTesterSmallBank, NonRobustWriteCheckExhibitsLostUpdate) {
  RandomTestOptions options;
  options.rounds = 300;
  RandomTestReport report = RunRandomRounds(
      &SmallBankDb,
      [] {
        return std::vector<ConcreteProgram>{
            SmallBankWriteCheck(0, 30),
            SmallBankWriteCheck(0, 40),
        };
      },
      options);
  EXPECT_GT(report.non_serializable_rounds, 0);
  ASSERT_TRUE(report.first_anomaly.has_value());
  EXPECT_NE(report.first_anomaly->find("non-serializable"), std::string::npos);
}

TEST(RandomTesterSmallBank, NonRobustBalDcTsExhibitsAnomaly) {
  // The four-transaction pattern: two Balances observing TransactSavings
  // and DepositChecking in opposite orders.
  RandomTestOptions options;
  options.rounds = 1500;
  RandomTestReport report = RunRandomRounds(
      &SmallBankDb,
      [] {
        return std::vector<ConcreteProgram>{
            SmallBankBalance(0),
            SmallBankBalance(0),
            SmallBankTransactSavings(0, 7),
            SmallBankDepositChecking(0, 9),
        };
      },
      options);
  EXPECT_GT(report.non_serializable_rounds, 0);
}

TEST(RandomTesterSmallBank, NonRobustAmalgamateBalanceExhibitsAnomaly) {
  RandomTestOptions options;
  options.rounds = 500;
  RandomTestReport report = RunRandomRounds(
      &SmallBankDb,
      [] {
        return std::vector<ConcreteProgram>{
            SmallBankAmalgamate(0, 1),
            SmallBankBalance(0),
        };
      },
      options);
  EXPECT_GT(report.non_serializable_rounds, 0);
}

TEST(RandomTesterAuction, FullAuctionAlwaysSerializable) {
  // {FindBids, PlaceBid} is robust (Figure 6): no execution mix may be
  // non-serializable, including predicate reads racing with bid updates.
  RandomTestOptions options;
  options.rounds = 400;
  RandomTestReport report = RunRandomRounds(
      &AuctionDb,
      [] {
        return std::vector<ConcreteProgram>{
            AuctionFindBids(0, 15),
            AuctionPlaceBid(1, 20),
            AuctionPlaceBid(1, 25),
            AuctionFindBids(1, 5),
        };
      },
      options);
  EXPECT_EQ(report.rounds_run, 400);
  EXPECT_EQ(report.non_serializable_rounds, 0) << *report.first_anomaly;
}

TEST(RandomTesterAuction, AbortsAreCountedAndRetried) {
  RandomTestOptions options;
  options.rounds = 200;
  RandomTestReport report = RunRandomRounds(
      &AuctionDb,
      [] {
        // Three PlaceBids on the same buyer contend for the Buyer row.
        return std::vector<ConcreteProgram>{
            AuctionPlaceBid(0, 20),
            AuctionPlaceBid(0, 30),
            AuctionPlaceBid(0, 40),
        };
      },
      options);
  EXPECT_EQ(report.non_serializable_rounds, 0);
  EXPECT_GT(report.total_aborts, 0);  // lock conflicts on Buyer#0 occur
}

}  // namespace
}  // namespace mvrc
