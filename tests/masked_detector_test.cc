// Differential test of the zero-copy MaskedDetector against the
// InducedSubgraph + FindTypeICycle/FindTypeIICycle oracle: for randomized
// (seeded) and builtin workloads, every mask must produce the same verdict
// AND the same witness (edges, paths — compared via Describe, which renders
// program names and statement labels and is therefore stable across the
// subgraph re-indexing). Also covers the allocation-free scratch contract:
// one scratch serves interleaved masks and methods, and scratches are
// independent across threads.

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "robust/detector.h"
#include "robust/masked_detector.h"
#include "robust/subsets.h"
#include "summary/build_summary.h"
#include "util/thread_pool.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

// A full-graph-plus-ranges bundle, as the subset sweep sees it.
struct GraphUnderTest {
  SummaryGraph graph;
  std::vector<std::pair<int, int>> ltp_range;
};

GraphUnderTest Build(const std::vector<Btp>& programs, const AnalysisSettings& settings) {
  std::vector<Ltp> all_ltps;
  std::vector<std::pair<int, int>> ltp_range;
  for (const Btp& program : programs) {
    std::vector<Ltp> unfolded = UnfoldAtMost2(program);
    ltp_range.push_back({static_cast<int>(all_ltps.size()),
                         static_cast<int>(all_ltps.size() + unfolded.size())});
    for (Ltp& ltp : unfolded) all_ltps.push_back(std::move(ltp));
  }
  return {BuildSummaryGraph(std::move(all_ltps), settings), std::move(ltp_range)};
}

std::vector<bool> KeepFor(uint32_t mask, const GraphUnderTest& t) {
  std::vector<bool> keep(t.graph.num_programs(), false);
  for (size_t i = 0; i < t.ltp_range.size(); ++i) {
    if ((mask >> i) & 1) {
      for (int p = t.ltp_range[i].first; p < t.ltp_range[i].second; ++p) keep[p] = true;
    }
  }
  return keep;
}

// Compares verdict and witness for one mask under both methods.
void ExpectMaskAgrees(const GraphUnderTest& t, const MaskedDetector& detector,
                      DetectorScratch& scratch, uint32_t mask, const std::string& context) {
  SummaryGraph oracle_graph = t.graph.InducedSubgraph(KeepFor(mask, t));

  std::optional<TypeIWitness> oracle1 = FindTypeICycle(oracle_graph);
  std::optional<TypeIWitness> masked1 = detector.FindTypeICycle(mask, scratch);
  ASSERT_EQ(masked1.has_value(), oracle1.has_value()) << context << " mask=" << mask;
  EXPECT_EQ(detector.HasTypeICycle(mask, scratch), oracle1.has_value())
      << context << " mask=" << mask;
  EXPECT_EQ(detector.IsRobust(mask, Method::kTypeI, scratch), !oracle1.has_value())
      << context << " mask=" << mask;
  if (oracle1.has_value()) {
    EXPECT_EQ(masked1->Describe(t.graph), oracle1->Describe(oracle_graph))
        << context << " mask=" << mask;
  }

  std::optional<TypeIIWitness> oracle2 = FindTypeIICycle(oracle_graph);
  std::optional<TypeIIWitness> masked2 = detector.FindTypeIICycle(mask, scratch);
  ASSERT_EQ(masked2.has_value(), oracle2.has_value()) << context << " mask=" << mask;
  EXPECT_EQ(detector.HasTypeIICycle(mask, scratch), oracle2.has_value())
      << context << " mask=" << mask;
  EXPECT_EQ(detector.IsRobust(mask, Method::kTypeII, scratch), !oracle2.has_value())
      << context << " mask=" << mask;
  EXPECT_EQ(detector.IsRobust(mask, Method::kTypeIINaive, scratch),
            !FindTypeIICycleNaive(oracle_graph).has_value())
      << context << " mask=" << mask;
  if (oracle2.has_value()) {
    EXPECT_EQ(masked2->Describe(t.graph), oracle2->Describe(oracle_graph))
        << context << " mask=" << mask;
  }
}

void ExpectAllMasksAgree(const std::vector<Btp>& programs, const AnalysisSettings& settings,
                         const std::string& context) {
  GraphUnderTest t = Build(programs, settings);
  MaskedDetector detector(t.graph, t.ltp_range);
  ASSERT_EQ(detector.num_programs(), static_cast<int>(programs.size()));
  ASSERT_EQ(detector.num_ltps(), t.graph.num_programs());
  DetectorScratch scratch = detector.MakeScratch();
  const uint32_t full = (uint32_t{1} << programs.size()) - 1;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    ExpectMaskAgrees(t, detector, scratch, mask, context);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- Randomized workloads. Mirrors the generator idiom of
// tests/random_property_test.cc, but tuned for subset analysis: 4-5
// programs (15-31 masks each) over 2-3 relations, with loops/branches so
// several programs unfold to more than one LTP and mask bits map to LTP
// *ranges*, not single nodes.

class RandomWorkloadGen {
 public:
  explicit RandomWorkloadGen(uint64_t seed) : rng_(seed) {}

  std::vector<Btp> Generate(Schema& schema) {
    const int num_relations = Pick(2, 3);
    for (int r = 0; r < num_relations; ++r) {
      std::vector<std::string> attrs;
      const int num_attrs = Pick(2, 4);
      for (int a = 0; a < num_attrs; ++a) {
        attrs.push_back("a" + std::to_string(r) + std::to_string(a));
      }
      schema.AddRelation("R" + std::to_string(r), attrs, {attrs[0]});
    }
    for (int r = 1; r < num_relations; ++r) {
      if (Chance(0.5)) schema.AddForeignKey("f" + std::to_string(r), r, {}, 0);
    }
    std::vector<Btp> programs;
    const int num_programs = Pick(4, 5);
    for (int p = 0; p < num_programs; ++p) programs.push_back(GenerateProgram(schema, p));
    return programs;
  }

 private:
  int Pick(int lo, int hi) { return lo + static_cast<int>(rng_() % (hi - lo + 1)); }
  bool Chance(double p) { return (rng_() % 1000) < p * 1000; }

  AttrSet RandomSubset(const Schema& schema, RelationId rel, bool non_empty) {
    AttrSet set;
    const int n = schema.relation(rel).num_attrs();
    for (int a = 0; a < n; ++a) {
      if (Chance(0.45)) set.Insert(a);
    }
    if (non_empty && set.empty()) set.Insert(static_cast<AttrId>(rng_() % n));
    return set;
  }

  Statement RandomStatement(const Schema& schema, const std::string& label) {
    RelationId rel = static_cast<RelationId>(rng_() % schema.num_relations());
    switch (rng_() % 7) {
      case 0:
        return Statement::Insert(label, schema, rel);
      case 1:
        return Statement::KeySelect(label, schema, rel, RandomSubset(schema, rel, false));
      case 2:
        return Statement::PredSelect(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false));
      case 3:
        return Statement::KeyUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                    RandomSubset(schema, rel, true));
      case 4:
        return Statement::PredUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, true));
      case 5:
        return Statement::KeyDelete(label, schema, rel);
      default:
        return Statement::PredDelete(label, schema, rel, RandomSubset(schema, rel, false));
    }
  }

  Btp GenerateProgram(const Schema& schema, int index) {
    Btp program("P" + std::to_string(index));
    const int num_statements = Pick(2, 4);
    std::vector<StmtId> ids;
    for (int q = 0; q < num_statements; ++q) {
      ids.push_back(program.AddStatement(RandomStatement(schema, "q" + std::to_string(q + 1))));
    }
    std::vector<Btp::NodeId> nodes;
    for (StmtId id : ids) nodes.push_back(program.Stmt(id));
    if (num_statements >= 2 && Chance(0.5)) {
      const int from = Pick(0, num_statements - 2);
      const int to = Pick(from + 1, num_statements - 1);
      std::vector<Btp::NodeId> inner(nodes.begin() + from, nodes.begin() + to + 1);
      Btp::NodeId wrapped;
      switch (rng_() % 3) {
        case 0:
          wrapped = program.Loop(program.Seq(inner));
          break;
        case 1:
          wrapped = program.Optional(program.Seq(inner));
          break;
        default:
          wrapped = program.Choice(program.Seq(inner), program.Stmt(ids[from]));
          break;
      }
      std::vector<Btp::NodeId> rebuilt(nodes.begin(), nodes.begin() + from);
      rebuilt.push_back(wrapped);
      rebuilt.insert(rebuilt.end(), nodes.begin() + to + 1, nodes.end());
      nodes = std::move(rebuilt);
    }
    program.Finish(program.Seq(nodes));
    return program;
  }

  std::mt19937_64 rng_;
};

class MaskedDetectorRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MaskedDetectorRandomTest, AgreesWithInducedSubgraphOracleOnEveryMask) {
  RandomWorkloadGen gen(GetParam() * 6271 + 17);
  Schema schema;
  std::vector<Btp> programs = gen.Generate(schema);
  for (const AnalysisSettings& settings :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDepFk()}) {
    ExpectAllMasksAgree(programs, settings,
                        "seed=" + std::to_string(GetParam()) + " / " + settings.name());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedDetectorRandomTest, ::testing::Range(0, 20));

// --- Builtin workloads: the paper's benchmarks, all four settings.

TEST(MaskedDetectorBuiltinTest, AgreesOnSmallBankAndAuction) {
  for (const Workload& workload : {MakeSmallBank(), MakeAuction(), MakeAuctionN(3)}) {
    for (const AnalysisSettings& settings :
         {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
          AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()}) {
      ExpectAllMasksAgree(workload.programs, settings, workload.name + " / " + settings.name());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(MaskedDetectorBuiltinTest, AgreesOnTpcc) {
  Workload workload = MakeTpcc();
  ExpectAllMasksAgree(workload.programs, AnalysisSettings::AttrDepFk(), "tpcc/attr+fk");
}

// One scratch must serve arbitrarily interleaved masks and methods: run the
// mask space twice in opposite orders and alternate methods, expecting
// identical verdicts.

TEST(MaskedDetectorScratchTest, ScratchIsReusableAcrossMasksAndMethods) {
  Workload workload = MakeSmallBank();
  GraphUnderTest t = Build(workload.programs, AnalysisSettings::AttrDepFk());
  MaskedDetector detector(t.graph, t.ltp_range);
  DetectorScratch scratch = detector.MakeScratch();
  const uint32_t full = (uint32_t{1} << workload.programs.size()) - 1;
  std::vector<bool> forward;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    forward.push_back(detector.IsRobust(mask, Method::kTypeII, scratch));
    detector.IsRobust(mask, Method::kTypeI, scratch);  // interleave the other method
  }
  for (uint32_t mask = full; mask >= 1; --mask) {
    EXPECT_EQ(detector.IsRobust(mask, Method::kTypeII, scratch), forward[mask - 1])
        << "mask=" << mask;
  }
}

// The sweep built on the detector must agree with a sweep-free full
// enumeration, and per-worker scratches must not interfere under threads.

TEST(MaskedDetectorSweepTest, SweepMatchesFullEnumerationSerialAndParallel) {
  Workload workload = MakeAuctionN(3);
  GraphUnderTest t = Build(workload.programs, AnalysisSettings::AttrDepFk());
  MaskedDetector detector(t.graph, t.ltp_range);
  DetectorScratch scratch = detector.MakeScratch();

  std::vector<uint32_t> expected;
  const uint32_t full = (uint32_t{1} << workload.programs.size()) - 1;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (detector.IsRobust(mask, Method::kTypeII, scratch)) expected.push_back(mask);
  }

  Result<SubsetReport> serial = AnalyzeSubsetsOnDetector(detector, Method::kTypeII);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial.value().robust_masks, expected);

  ThreadPool pool(4);
  Result<SubsetReport> parallel =
      AnalyzeSubsetsOnDetector(detector, Method::kTypeII, &pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.value().robust_masks, expected);
  EXPECT_EQ(parallel.value().maximal_masks, serial.value().maximal_masks);
}

TEST(SubsetReportTest, IsRobustSubsetBinarySearchesSortedMasks) {
  SubsetReport report;
  report.num_programs = 4;
  report.robust_masks = {1, 2, 3, 5, 8, 12};
  for (uint32_t mask : report.robust_masks) EXPECT_TRUE(report.IsRobustSubset(mask));
  for (uint32_t mask : {0u, 4u, 6u, 7u, 9u, 15u}) EXPECT_FALSE(report.IsRobustSubset(mask));
}

}  // namespace
}  // namespace mvrc
