// The parallel subset-robustness engine must be observably identical to the
// serial sweep: same robust_masks, same maximal_masks, for every workload,
// setting, method and thread count. Also covers the parallel summary-graph
// builder (identical edge lists) and the ThreadPool primitive itself.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "robust/subsets.h"
#include "summary/build_summary.h"
#include "util/thread_pool.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

std::vector<Workload> TestWorkloads() {
  std::vector<Workload> workloads;
  workloads.push_back(MakeSmallBank());
  workloads.push_back(MakeTpcc());
  workloads.push_back(MakeAuction());
  // 8 programs: large enough that the parallel sweep spans several levels
  // with real fan-out.
  workloads.push_back(MakeAuctionN(4));
  return workloads;
}

const AnalysisSettings kAllSettings[] = {
    AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
    AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()};

TEST(SubsetsParallelTest, MatchesSerialForAllThreadCounts) {
  for (const Workload& workload : TestWorkloads()) {
    for (const AnalysisSettings& settings : kAllSettings) {
      for (Method method : {Method::kTypeI, Method::kTypeII}) {
        SubsetReport serial = AnalyzeSubsets(workload.programs, settings, method);
        ASSERT_EQ(serial.num_threads, 1);
        for (int threads : {1, 2, 8}) {
          SubsetReport parallel =
              AnalyzeSubsets(workload.programs, settings.WithThreads(threads), method);
          EXPECT_EQ(parallel.num_threads, threads);
          EXPECT_EQ(parallel.num_programs, serial.num_programs);
          EXPECT_EQ(parallel.robust_masks, serial.robust_masks)
              << workload.name << " / " << settings.name() << " / "
              << (method == Method::kTypeI ? "type-I" : "type-II") << " / " << threads
              << " threads";
          EXPECT_EQ(parallel.maximal_masks, serial.maximal_masks)
              << workload.name << " / " << settings.name() << " / "
              << (method == Method::kTypeI ? "type-I" : "type-II") << " / " << threads
              << " threads";
        }
      }
    }
  }
}

TEST(SubsetsParallelTest, ZeroThreadsMeansHardwareConcurrency) {
  Workload workload = MakeSmallBank();
  AnalysisSettings settings = AnalysisSettings::AttrDepFk().WithThreads(0);
  SubsetReport report =
      AnalyzeSubsets(workload.programs, settings, Method::kTypeII);
  EXPECT_EQ(report.num_threads, ThreadPool::ResolveThreadCount(0));
  EXPECT_EQ(report.robust_masks,
            AnalyzeSubsets(workload.programs, AnalysisSettings::AttrDepFk(), Method::kTypeII)
                .robust_masks);
}

TEST(BuildSummaryParallelTest, EdgeListIdenticalToSerial) {
  for (const Workload& workload : TestWorkloads()) {
    for (const AnalysisSettings& settings : kAllSettings) {
      SummaryGraph serial =
          BuildSummaryGraph(UnfoldAtMost2(workload.programs), settings);
      for (int threads : {2, 8}) {
        SummaryGraph parallel = BuildSummaryGraph(UnfoldAtMost2(workload.programs),
                                                  settings.WithThreads(threads));
        ASSERT_EQ(parallel.num_edges(), serial.num_edges());
        EXPECT_EQ(parallel.edges(), serial.edges())
            << workload.name << " / " << settings.name() << " / " << threads << " threads";
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kCount = 10'000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.ParallelFor(kCount, [&visits](int64_t i) { visits[i].fetch_add(1); });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleItem) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int64_t) { FAIL() << "no items to visit"; });
  std::atomic<int> calls{0};
  pool.ParallelFor(1, [&calls](int64_t i) {
    EXPECT_EQ(i, 0);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(5), 5);
}

}  // namespace
}  // namespace mvrc
