#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace mvrc {
namespace {

std::vector<Token> MustTokenize(const std::string& source) {
  Result<std::vector<Token>> result = Tokenize(source);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.ok() ? result.value() : std::vector<Token>{};
}

TEST(SqlLexerTest, EmptyInputYieldsEof) {
  std::vector<Token> tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(SqlLexerTest, IdentifiersAndKeywords) {
  std::vector<Token> tokens = MustTokenize("SELECT balance FROM Savings");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[0].IsKeyword("select"));  // case-insensitive
  EXPECT_FALSE(tokens[0].IsKeyword("SELEC"));
  EXPECT_FALSE(tokens[0].IsKeyword("SELECTX"));
  EXPECT_EQ(tokens[1].text, "balance");
}

TEST(SqlLexerTest, Parameters) {
  std::vector<Token> tokens = MustTokenize(":B, :x1");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kParam);
  EXPECT_EQ(tokens[0].text, "B");
  EXPECT_EQ(tokens[2].type, TokenType::kParam);
  EXPECT_EQ(tokens[2].text, "x1");
}

TEST(SqlLexerTest, BareColonIsSymbol) {
  std::vector<Token> tokens = MustTokenize("PROGRAM P() :");
  EXPECT_EQ(tokens[4].type, TokenType::kSymbol);
  EXPECT_EQ(tokens[4].text, ":");
}

TEST(SqlLexerTest, Numbers) {
  std::vector<Token> tokens = MustTokenize("20 007");
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, "20");
  EXPECT_EQ(tokens[1].text, "007");
}

TEST(SqlLexerTest, ComparisonOperators) {
  std::vector<Token> tokens = MustTokenize("< <= > >= <> =");
  std::vector<std::string> expected{"<", "<=", ">", ">=", "<>", "="};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol);
    EXPECT_EQ(tokens[i].text, expected[i]);
  }
}

TEST(SqlLexerTest, CommentsRunToEndOfLine) {
  std::vector<Token> tokens = MustTokenize("a -- everything here vanishes ;\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(SqlLexerTest, LineNumbersTracked) {
  std::vector<Token> tokens = MustTokenize("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(SqlLexerTest, MinusIsNotComment) {
  std::vector<Token> tokens = MustTokenize("a - b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].text, "-");
}

TEST(SqlLexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

}  // namespace
}  // namespace mvrc
