// Direct unit coverage for robust/verdict_cache plus the fingerprint
// semantics the analysis service builds on it: hits and misses are
// accounted, revisions bump cached verdicts out exactly when a mutation
// changes a program's incident edges, and fingerprints keyed under
// different isolation levels never collide. The wide 128-bit currency is
// covered too: distinctness over exhaustively enumerated subset families,
// per-member revision sensitivity, and — through a >32-program session —
// cross-mutation cache hits in the core-guided regime.

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "robust/core_search.h"
#include "robust/program_set.h"
#include "robust/verdict_cache.h"
#include "service/workload_session.h"
#include "workloads/auction.h"
#include "workloads/policy_demo.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

TEST(VerdictCacheTest, LookupMissThenHit) {
  VerdictCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  cache.Store("k1", true);
  EXPECT_EQ(cache.size(), 1u);
  std::optional<bool> verdict = cache.Lookup("k1");
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(VerdictCacheTest, StoreOverwritesAndClearEmpties) {
  VerdictCache cache;
  cache.Store("k", true);
  cache.Store("k", false);
  EXPECT_EQ(cache.size(), 1u);
  std::optional<bool> verdict = cache.Lookup("k");
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("k").has_value());
  // Counters survive Clear (they describe the cache's lifetime service).
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

// Fingerprints under different isolation levels are distinct keys even for
// the same program set, method and revision — the convention
// WorkloadSession::FingerprintLocked implements by prefixing the settings
// string.
TEST(VerdictCacheTest, IsolationLevelsDoNotCollide) {
  VerdictCache cache;
  const std::string mvrc_key =
      AnalysisSettings::AttrDepFk().ToString() + "|1|Monitor#1;Refresh#2;";
  const std::string rc_key =
      AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc).ToString() +
      "|1|Monitor#1;Refresh#2;";
  ASSERT_NE(mvrc_key, rc_key);
  cache.Store(mvrc_key, false);
  cache.Store(rc_key, true);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(mvrc_key), std::optional<bool>(false));
  EXPECT_EQ(cache.Lookup(rc_key), std::optional<bool>(true));
}

// --- The wide 128-bit currency. -------------------------------------------

std::vector<std::pair<std::string, int64_t>> MakeMembers(int n, int64_t revision = 1) {
  std::vector<std::pair<std::string, int64_t>> members;
  for (int i = 0; i < n; ++i) members.emplace_back("P" + std::to_string(i), revision);
  return members;
}

TEST(VerdictCacheWideTest, WideLookupStoreAndClear) {
  const WideFingerprinter fp("ctx", 1, MakeMembers(40));
  VerdictCache cache;
  ProgramSet subset(40);
  subset.Set(0);
  subset.Set(33);  // crosses the uint32_t boundary

  EXPECT_FALSE(cache.Lookup(fp.Of(subset)).has_value());
  EXPECT_EQ(cache.misses(), 1);
  cache.Store(fp.Of(subset), true);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(fp.Of(subset)), std::optional<bool>(true));
  EXPECT_EQ(cache.hits(), 1);

  // Narrow and wide entries coexist and are counted together.
  cache.Store("narrow-key", false);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(fp.Of(subset)).has_value());
}

// Collision safety: every one of the 2^16 subsets of a 16-member list maps
// to a distinct fingerprint, as do thousands of random subsets of a
// 40-member list (where exhaustive enumeration is out of reach).
TEST(VerdictCacheWideTest, FingerprintsAreCollisionFreeOverEnumeratedFamilies) {
  {
    const int n = 16;
    const WideFingerprinter fp("ctx", 1, MakeMembers(n));
    std::set<std::pair<uint64_t, uint64_t>> seen;
    for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
      const WideFingerprint f = fp.Of(ProgramSet::FromMask(mask, n));
      EXPECT_TRUE(seen.insert({f.hi, f.lo}).second) << "collision at mask " << mask;
    }
  }
  {
    const int n = 40;
    const WideFingerprinter fp("ctx", 1, MakeMembers(n));
    std::set<std::pair<uint64_t, uint64_t>> seen;
    std::set<std::vector<int>> distinct;
    std::mt19937_64 rng(7);
    for (int s = 0; s < 20000; ++s) {
      ProgramSet subset(n);
      for (int p = 0; p < n; ++p) {
        if ((rng() & 1) != 0) subset.Set(p);
      }
      if (!distinct.insert(subset.ToIndices()).second) continue;
      const WideFingerprint f = fp.Of(subset);
      EXPECT_TRUE(seen.insert({f.hi, f.lo}).second) << "collision at sample " << s;
    }
  }
}

// Bumping one member's revision changes exactly the fingerprints of subsets
// containing that member, and different contexts/methods never share
// fingerprints even for identical member lists.
TEST(VerdictCacheWideTest, RevisionContextAndMethodAllSeparateFingerprints) {
  const int n = 36;
  auto members = MakeMembers(n);
  const WideFingerprinter before("ctx", 1, members);
  members[5].second = 2;  // P5's incident edges changed
  const WideFingerprinter after("ctx", 1, members);
  const WideFingerprinter other_method("ctx", 2, MakeMembers(n));
  const WideFingerprinter other_ctx("ctx2", 1, MakeMembers(n));

  std::mt19937_64 rng(11);
  int with5 = 0, without5 = 0;
  for (int s = 0; s < 500; ++s) {
    ProgramSet subset(n);
    for (int p = 0; p < n; ++p) {
      if ((rng() & 1) != 0) subset.Set(p);
    }
    if (subset.Empty()) continue;
    if (subset.Test(5)) {
      EXPECT_NE(before.Of(subset), after.Of(subset)) << "sample " << s;
      ++with5;
    } else {
      EXPECT_EQ(before.Of(subset), after.Of(subset)) << "sample " << s;
      ++without5;
    }
    EXPECT_NE(before.Of(subset), other_method.Of(subset)) << "sample " << s;
    EXPECT_NE(before.Of(subset), other_ctx.Of(subset)) << "sample " << s;
  }
  EXPECT_GT(with5, 0);
  EXPECT_GT(without5, 0);
}

// --- Revision semantics through WorkloadSession. --------------------------

// Replacing a program with an equivalent one preserves cached verdicts;
// replacing it with one that changes incident edges invalidates them.
TEST(VerdictCacheSessionTest, RevisionBumpInvalidates) {
  Workload workload = MakeSmallBank();
  WorkloadSession session("s", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadWorkload(workload).ok());

  CheckResult first = session.Check();
  EXPECT_FALSE(first.from_cache);
  CheckResult second = session.Check();
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.robust, first.robust);

  // Identity replace: same program, same incident edges — the revision (and
  // with it the cached verdict) survives.
  ASSERT_TRUE(session.ReplaceProgram(workload.programs[0]).ok());
  CheckResult after_identity = session.Check();
  EXPECT_TRUE(after_identity.from_cache);

  // Mutating replace: drop the program's statements down to a single read —
  // incident edges change, the revision bumps, the verdict must be
  // recomputed.
  Btp reduced(workload.programs[0].name());
  reduced.AddStatement(Statement::KeySelect(
      "q1", workload.schema, 0, workload.schema.MakeAttrSet(0, {"CustomerId"})));
  ASSERT_TRUE(session.ReplaceProgram(reduced).ok());
  CheckResult after_mutation = session.Check();
  EXPECT_FALSE(after_mutation.from_cache);
}

// Two sessions over the same programs under different isolation levels keep
// independent verdicts: the demo workload is non-robust under MVRC and
// robust under lock-based RC.
TEST(VerdictCacheSessionTest, IsolationLevelsKeepIndependentVerdicts) {
  Workload demo = MakeIsolationDemo();

  WorkloadSession mvrc_session("mvrc", AnalysisSettings::AttrDepFk());
  WorkloadSession rc_session(
      "rc", AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc));
  ASSERT_TRUE(mvrc_session.LoadWorkload(demo).ok());
  ASSERT_TRUE(rc_session.LoadWorkload(demo).ok());

  CheckResult mvrc_result = mvrc_session.Check();
  CheckResult rc_result = rc_session.Check();
  EXPECT_FALSE(mvrc_result.robust);
  EXPECT_FALSE(mvrc_result.witness.empty());
  EXPECT_TRUE(rc_result.robust);
  EXPECT_TRUE(rc_result.witness.empty());

  // Both serve their own cached verdict on re-check.
  EXPECT_TRUE(mvrc_session.Check().from_cache);
  EXPECT_TRUE(rc_session.Check().from_cache);
  EXPECT_FALSE(mvrc_session.Check().robust);
  EXPECT_TRUE(rc_session.Check().robust);
}

// Cross-mutation memoization past 32 programs: a 34-program session's
// core-guided subset analyses hit the wide cache across mutations that
// preserve member revisions, and keep reporting the exact lattice a
// from-scratch analysis computes after a real mutation.
TEST(VerdictCacheSessionTest, WideFingerprintsMemoizeAcrossMutationsPast32Programs) {
  Workload workload = MakeAuctionN(17);  // 34 programs: wide fingerprints only
  ASSERT_EQ(workload.programs.size(), 34u);
  // No-FK attr dep: the per-item bid programs are individually non-robust,
  // so the lattice is non-trivial and the search issues real queries.
  const AnalysisSettings settings = AnalysisSettings::AttrDep();
  WorkloadSession session("wide", settings);
  ASSERT_TRUE(session.LoadWorkload(workload).ok());

  static Counter* hits_metric = MetricsRegistry::Global().counter("core.cache_hits");
  static Counter* misses_metric = MetricsRegistry::Global().counter("core.cache_misses");

  const int64_t misses_before = misses_metric->Value();
  Result<SubsetReport> first = session.Subsets();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().from_core_search);
  const int64_t runs_after_first = session.stats().detector_runs;
  EXPECT_GT(runs_after_first, 0);
  EXPECT_GT(misses_metric->Value(), misses_before);  // cold cache: real queries

  // Identity replace: incident edges unchanged, revisions preserved — the
  // re-analysis answers every IsRobust evaluation from the wide cache.
  ASSERT_TRUE(session.ReplaceProgram(workload.programs[0]).ok());
  const int64_t hits_before = hits_metric->Value();
  Result<SubsetReport> second = session.Subsets();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session.stats().detector_runs, runs_after_first);  // zero new queries
  EXPECT_GT(hits_metric->Value(), hits_before);  // served by cross-mutation hits
  EXPECT_EQ(second.value().cores, first.value().cores);
  EXPECT_EQ(second.value().maximal_sets, first.value().maximal_sets);

  // Real mutation: removing a program shifts bit positions, but fingerprints
  // follow member identity, so verdicts of surviving subsets still hit; the
  // report matches a from-scratch analysis of the reduced workload.
  ASSERT_TRUE(session.RemoveProgram(workload.programs[0].name()).ok());
  const int64_t hits_before_removal = hits_metric->Value();
  Result<SubsetReport> third = session.Subsets();
  ASSERT_TRUE(third.ok());
  EXPECT_GT(hits_metric->Value(), hits_before_removal);

  std::vector<Btp> remaining(workload.programs.begin() + 1, workload.programs.end());
  Result<SubsetReport> fresh =
      TryAnalyzeSubsetsCoreGuided(remaining, settings, Method::kTypeII);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(third.value().cores, fresh.value().cores);
  EXPECT_EQ(third.value().maximal_sets, fresh.value().maximal_sets);
}

}  // namespace
}  // namespace mvrc
