// Direct unit coverage for robust/verdict_cache plus the fingerprint
// semantics the analysis service builds on it: hits and misses are
// accounted, revisions bump cached verdicts out exactly when a mutation
// changes a program's incident edges, and fingerprints keyed under
// different isolation levels never collide.

#include <string>

#include <gtest/gtest.h>

#include "robust/verdict_cache.h"
#include "service/workload_session.h"
#include "workloads/policy_demo.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

TEST(VerdictCacheTest, LookupMissThenHit) {
  VerdictCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  cache.Store("k1", true);
  EXPECT_EQ(cache.size(), 1u);
  std::optional<bool> verdict = cache.Lookup("k1");
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(VerdictCacheTest, StoreOverwritesAndClearEmpties) {
  VerdictCache cache;
  cache.Store("k", true);
  cache.Store("k", false);
  EXPECT_EQ(cache.size(), 1u);
  std::optional<bool> verdict = cache.Lookup("k");
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("k").has_value());
  // Counters survive Clear (they describe the cache's lifetime service).
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

// Fingerprints under different isolation levels are distinct keys even for
// the same program set, method and revision — the convention
// WorkloadSession::FingerprintLocked implements by prefixing the settings
// string.
TEST(VerdictCacheTest, IsolationLevelsDoNotCollide) {
  VerdictCache cache;
  const std::string mvrc_key =
      AnalysisSettings::AttrDepFk().ToString() + "|1|Monitor#1;Refresh#2;";
  const std::string rc_key =
      AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc).ToString() +
      "|1|Monitor#1;Refresh#2;";
  ASSERT_NE(mvrc_key, rc_key);
  cache.Store(mvrc_key, false);
  cache.Store(rc_key, true);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(mvrc_key), std::optional<bool>(false));
  EXPECT_EQ(cache.Lookup(rc_key), std::optional<bool>(true));
}

// --- Revision semantics through WorkloadSession. --------------------------

// Replacing a program with an equivalent one preserves cached verdicts;
// replacing it with one that changes incident edges invalidates them.
TEST(VerdictCacheSessionTest, RevisionBumpInvalidates) {
  Workload workload = MakeSmallBank();
  WorkloadSession session("s", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadWorkload(workload).ok());

  CheckResult first = session.Check();
  EXPECT_FALSE(first.from_cache);
  CheckResult second = session.Check();
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.robust, first.robust);

  // Identity replace: same program, same incident edges — the revision (and
  // with it the cached verdict) survives.
  ASSERT_TRUE(session.ReplaceProgram(workload.programs[0]).ok());
  CheckResult after_identity = session.Check();
  EXPECT_TRUE(after_identity.from_cache);

  // Mutating replace: drop the program's statements down to a single read —
  // incident edges change, the revision bumps, the verdict must be
  // recomputed.
  Btp reduced(workload.programs[0].name());
  reduced.AddStatement(Statement::KeySelect(
      "q1", workload.schema, 0, workload.schema.MakeAttrSet(0, {"CustomerId"})));
  ASSERT_TRUE(session.ReplaceProgram(reduced).ok());
  CheckResult after_mutation = session.Check();
  EXPECT_FALSE(after_mutation.from_cache);
}

// Two sessions over the same programs under different isolation levels keep
// independent verdicts: the demo workload is non-robust under MVRC and
// robust under lock-based RC.
TEST(VerdictCacheSessionTest, IsolationLevelsKeepIndependentVerdicts) {
  Workload demo = MakeIsolationDemo();

  WorkloadSession mvrc_session("mvrc", AnalysisSettings::AttrDepFk());
  WorkloadSession rc_session(
      "rc", AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc));
  ASSERT_TRUE(mvrc_session.LoadWorkload(demo).ok());
  ASSERT_TRUE(rc_session.LoadWorkload(demo).ok());

  CheckResult mvrc_result = mvrc_session.Check();
  CheckResult rc_result = rc_session.Check();
  EXPECT_FALSE(mvrc_result.robust);
  EXPECT_FALSE(mvrc_result.witness.empty());
  EXPECT_TRUE(rc_result.robust);
  EXPECT_TRUE(rc_result.witness.empty());

  // Both serve their own cached verdict on re-check.
  EXPECT_TRUE(mvrc_session.Check().from_cache);
  EXPECT_TRUE(rc_session.Check().from_cache);
  EXPECT_FALSE(mvrc_session.Check().robust);
  EXPECT_TRUE(rc_session.Check().robust);
}

}  // namespace
}  // namespace mvrc
