#include <gtest/gtest.h>

#include "util/dot_writer.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace mvrc {
namespace {

TEST(DotWriterTest, RendersNodesAndEdges) {
  DotWriter dot("g");
  dot.AddNode("a", "Node A", "shape=box");
  dot.AddNode("b", "Node B");
  dot.AddEdge("a", "b", "lbl");
  dot.AddEdge("b", "a", "", /*dashed=*/true);
  dot.AddEdge("a", "a");
  std::string text = dot.ToDot();
  EXPECT_NE(text.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(text.find("\"a\" [label=\"Node A\", shape=box];"), std::string::npos);
  EXPECT_NE(text.find("\"a\" -> \"b\" [label=\"lbl\"];"), std::string::npos);
  EXPECT_NE(text.find("\"b\" -> \"a\" [style=dashed];"), std::string::npos);
  EXPECT_NE(text.find("\"a\" -> \"a\";"), std::string::npos);
}

TEST(DotWriterTest, EscapesQuotesAndBackslashes) {
  DotWriter dot("g\"x");
  dot.AddNode("n\"1", "l\\2");
  std::string text = dot.ToDot();
  EXPECT_NE(text.find("digraph \"g\\\"x\""), std::string::npos);
  EXPECT_NE(text.find("\"n\\\"1\""), std::string::npos);
  EXPECT_NE(text.find("label=\"l\\\\2\""), std::string::npos);
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, ErrorCarriesMessage) {
  Result<int> result = Result<int>::Error("boom");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), "boom");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, AccessorsAbortOnMisuse) {
  EXPECT_DEATH(
      {
        Result<int> result = Result<int>::Error("x");
        (void)result.value();
      },
      "value\\(\\) on error");
  EXPECT_DEATH(
      {
        Result<int> result = 1;
        (void)result.error();
      },
      "error\\(\\) on ok");
}

TEST(StatusTest, DefaultOkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.error().empty());
  Status error = Status::Error("bad");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.error(), "bad");
}

TEST(StopwatchTest, MeasuresNonNegativeElapsed) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), 0.0);
  EXPECT_GE(watch.ElapsedMicros(), 0);
  watch.Restart();
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch watch;
  // Busy-wait until some time has visibly passed on the microsecond clock.
  while (watch.ElapsedMicros() < 1000) {
  }
  const int64_t micros = watch.ElapsedMicros();
  const double millis = watch.ElapsedMillis();
  EXPECT_GE(micros, 1000);
  // The two reads are an instant apart; allow 10ms of scheduler slop.
  EXPECT_NEAR(millis, static_cast<double>(micros) / 1000.0, 10.0);
}

TEST(CheckDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ MVRC_CHECK_MSG(false, "custom message"); }, "custom message");
  EXPECT_DEATH({ MVRC_CHECK(1 == 2); }, "1 == 2");
}

}  // namespace
}  // namespace mvrc
