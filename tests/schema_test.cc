#include "schema/schema.h"

#include <gtest/gtest.h>

namespace mvrc {
namespace {

Schema MakeTestSchema() {
  Schema schema;
  RelationId buyer = schema.AddRelation("Buyer", {"id", "calls"}, {"id"});
  RelationId bids = schema.AddRelation("Bids", {"buyerId", "bid"}, {"buyerId"});
  schema.AddForeignKey("f1", bids, {"buyerId"}, buyer);
  return schema;
}

TEST(SchemaTest, AddAndFindRelation) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.num_relations(), 2);
  EXPECT_EQ(schema.FindRelation("Buyer"), 0);
  EXPECT_EQ(schema.FindRelation("Bids"), 1);
  EXPECT_EQ(schema.FindRelation("Nope"), -1);
}

TEST(SchemaTest, RelationAttributes) {
  Schema schema = MakeTestSchema();
  const Relation& buyer = schema.relation(0);
  EXPECT_EQ(buyer.num_attrs(), 2);
  EXPECT_EQ(buyer.attr_name(0), "id");
  EXPECT_EQ(buyer.FindAttr("calls"), 1);
  EXPECT_EQ(buyer.FindAttr("nope"), -1);
  EXPECT_EQ(buyer.AllAttrs(), AttrSet::FirstN(2));
}

TEST(SchemaTest, PrimaryKey) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.relation(0).primary_key(), AttrSet{0});
}

TEST(SchemaTest, CompositePrimaryKey) {
  Schema schema;
  RelationId r = schema.AddRelation("R", {"a", "b", "c"}, {"a", "b"});
  EXPECT_EQ(schema.relation(r).primary_key(), (AttrSet{0, 1}));
}

TEST(SchemaTest, ForeignKey) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.num_foreign_keys(), 1);
  const ForeignKey& fk = schema.foreign_key(0);
  EXPECT_EQ(fk.name, "f1");
  EXPECT_EQ(fk.dom, schema.FindRelation("Bids"));
  EXPECT_EQ(fk.range, schema.FindRelation("Buyer"));
  ASSERT_EQ(fk.dom_attrs.size(), 1u);
  EXPECT_EQ(fk.dom_attrs[0], 0);
  EXPECT_EQ(schema.FindForeignKey("f1"), 0);
  EXPECT_EQ(schema.FindForeignKey("f9"), -1);
}

TEST(SchemaTest, MakeAttrSet) {
  Schema schema = MakeTestSchema();
  AttrSet set = schema.MakeAttrSet(0, {"calls"});
  EXPECT_EQ(set, AttrSet{1});
}

TEST(SchemaTest, AttrSetToString) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.AttrSetToString(0, AttrSet{0, 1}), "{id, calls}");
  EXPECT_EQ(schema.AttrSetToString(0, AttrSet{}), "{}");
}

TEST(SchemaTest, EmptyPrimaryKeyAllowed) {
  Schema schema;
  RelationId r = schema.AddRelation("History", {"a", "b"}, {});
  EXPECT_TRUE(schema.relation(r).primary_key().empty());
}

}  // namespace
}  // namespace mvrc
