// Engine coverage for predicate writes and insert/delete workloads: a small
// task-queue schema exercised through PredUpdate / PredDelete / Insert,
// with trace validation against the schedule formalism (including phantom
// dependencies through predicate reads).

#include <gtest/gtest.h>

#include "engine/random_tester.h"
#include "mvcc/serialization_graph.h"

namespace mvrc {
namespace {

Schema TaskSchema() {
  Schema schema;
  schema.AddRelation("Task", {"id", "state", "priority"}, {"id"});
  return schema;
}

constexpr RelationId kTask = 0;
constexpr AttrId kState = 1;
constexpr AttrId kPriority = 2;

class EnginePredTest : public ::testing::Test {
 protected:
  EnginePredTest() : db_(TaskSchema()) {
    db_.Seed(kTask, 0, {0, 0, 5});
    db_.Seed(kTask, 1, {1, 0, 9});
    db_.Seed(kTask, 2, {2, 1, 3});
  }
  Database db_;
  TraceRecorder recorder_;
};

TEST_F(EnginePredTest, PredUpdateTouchesMatchingRowsOnly) {
  EngineTxn txn(&db_, &recorder_);
  ASSERT_EQ(txn.PredUpdate(kTask, AttrSet{kState}, AttrSet{}, AttrSet{kState},
                           [](const Row& row) { return row[kState] == 0; },
                           [](const Row& row) {
                             Row updated = row;
                             updated[kState] = 1;
                             return updated;
                           }),
            StepResult::kOk);
  txn.Commit();
  // Tasks 0 and 1 flipped; task 2 untouched.
  EXPECT_EQ(db_.LastCommitted(kTask, 0)->values[kState], 1);
  EXPECT_EQ(db_.LastCommitted(kTask, 1)->values[kState], 1);
  EXPECT_EQ(db_.LastCommitted(kTask, 2)->writer_txn, -1);  // still the seed
}

TEST_F(EnginePredTest, PredUpdateRecordsChunkedOperations) {
  EngineTxn txn(&db_, &recorder_);
  ASSERT_EQ(txn.PredUpdate(kTask, AttrSet{kState}, AttrSet{kPriority}, AttrSet{kState},
                           [](const Row& row) { return row[kState] == 0; },
                           [](const Row& row) { return row; }),
            StepResult::kOk);
  txn.Commit();
  Result<Schedule> schedule = recorder_.ToSchedule();
  ASSERT_TRUE(schedule.ok()) << schedule.error();
  const Transaction& formal = schedule.value().txn(0);
  // PR + (R W) x 2 matching rows + C.
  ASSERT_EQ(formal.size(), 6);
  EXPECT_EQ(formal.op(0).kind, OpKind::kPredRead);
  EXPECT_EQ(formal.op(1).kind, OpKind::kRead);
  EXPECT_EQ(formal.op(2).kind, OpKind::kWrite);
  // The whole statement is one atomic chunk.
  ASSERT_EQ(formal.chunks().size(), 1u);
  EXPECT_EQ(formal.chunks()[0], std::make_pair(0, 4));
}

TEST_F(EnginePredTest, PredUpdateBlockedByLockedRow) {
  EngineTxn holder(&db_, &recorder_);
  ASSERT_EQ(holder.KeyUpdate(kTask, 1, AttrSet{}, AttrSet{kState},
                             [](const Row& row) { return row; }),
            StepResult::kOk);
  EngineTxn sweeper(&db_, &recorder_);
  EXPECT_EQ(sweeper.PredUpdate(kTask, AttrSet{kState}, AttrSet{}, AttrSet{kState},
                               [](const Row& row) { return row[kState] == 0; },
                               [](const Row& row) { return row; }),
            StepResult::kBlocked);
  sweeper.Abort();
  holder.Commit();
}

TEST_F(EnginePredTest, PredDeleteRemovesMatchingRows) {
  EngineTxn txn(&db_, &recorder_);
  ASSERT_EQ(txn.PredDelete(kTask, AttrSet{kState},
                           [](const Row& row) { return row[kState] == 1; }),
            StepResult::kOk);
  txn.Commit();
  EXPECT_TRUE(db_.LastCommitted(kTask, 2)->deleted);
  EXPECT_FALSE(db_.LastCommitted(kTask, 0)->deleted);

  // A later scan no longer sees the deleted row.
  EngineTxn scanner(&db_, &recorder_);
  std::vector<Row> rows;
  ASSERT_EQ(scanner.PredSelect(kTask, AttrSet{}, AttrSet{kState},
                               [](const Row&) { return true; }, &rows),
            StepResult::kOk);
  EXPECT_EQ(rows.size(), 2u);
  scanner.Commit();
}

TEST_F(EnginePredTest, InsertVisibleToLaterPredicateRead) {
  EngineTxn producer(&db_, &recorder_);
  Value key = producer.FreshKey(kTask);
  ASSERT_EQ(producer.Insert(kTask, key, {key, 0, 1}), StepResult::kOk);
  producer.Commit();

  EngineTxn scanner(&db_, &recorder_);
  std::vector<Row> rows;
  ASSERT_EQ(scanner.PredSelect(kTask, AttrSet{kState}, AttrSet{kPriority},
                               [](const Row& row) { return row[kState] == 0; }, &rows),
            StepResult::kOk);
  EXPECT_EQ(rows.size(), 3u);  // tasks 0, 1 and the new one
  scanner.Commit();

  // The trace exhibits a predicate wr-dependency from the insert to the PR.
  Result<Schedule> schedule = recorder_.ToSchedule();
  ASSERT_TRUE(schedule.ok()) << schedule.error();
  bool found_pred_wr = false;
  for (const Dependency& dep : ComputeDependencies(schedule.value())) {
    if (dep.type == DepType::kPredWR && schedule.value().op(dep.from).kind ==
                                            OpKind::kInsert) {
      found_pred_wr = true;
    }
  }
  EXPECT_TRUE(found_pred_wr);
}

TEST_F(EnginePredTest, RandomQueueWorkloadProducesValidTraces) {
  // Producer inserts tasks; Sweep flips fresh tasks via predicate update;
  // Purge deletes swept tasks via predicate delete. Every random round must
  // yield a structurally valid, dirty-write-free schedule (checked inside
  // RunRandomRounds); serializability itself is not guaranteed for this mix.
  auto make_db = [] {
    Database db(TaskSchema());
    db.Seed(kTask, 0, {0, 0, 5});
    return db;
  };
  auto producer = [](Value priority) {
    ConcreteProgram program;
    program.name = "Produce";
    program.steps.push_back([priority](EngineTxn& txn, Locals&) {
      Value key = txn.FreshKey(kTask);
      return txn.Insert(kTask, key, {key, 0, priority});
    });
    return program;
  };
  auto sweep = [] {
    ConcreteProgram program;
    program.name = "Sweep";
    program.steps.push_back([](EngineTxn& txn, Locals&) {
      return txn.PredUpdate(kTask, AttrSet{kState}, AttrSet{}, AttrSet{kState},
                            [](const Row& row) { return row[kState] == 0; },
                            [](const Row& row) {
                              Row updated = row;
                              updated[kState] = 1;
                              return updated;
                            });
    });
    return program;
  };
  auto purge = [] {
    ConcreteProgram program;
    program.name = "Purge";
    program.steps.push_back([](EngineTxn& txn, Locals&) {
      return txn.PredDelete(kTask, AttrSet{kState},
                            [](const Row& row) { return row[kState] == 1; });
    });
    return program;
  };

  RandomTestOptions options;
  options.rounds = 200;
  RandomTestReport report = RunRandomRounds(
      make_db,
      [&] {
        return std::vector<ConcreteProgram>{producer(1), producer(2), sweep(), purge()};
      },
      options);
  EXPECT_EQ(report.rounds_run, 200);
  EXPECT_EQ(report.serializable_rounds + report.non_serializable_rounds, 200);
}

}  // namespace
}  // namespace mvrc
