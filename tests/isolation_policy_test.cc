// Unit and property coverage for the isolation-policy layer: the policy
// singletons' table/clause/cycle hooks, the lock-based RC counterflow
// restriction and split-cycle test, the interned-vs-legacy build identity
// under the RC policy, the MVRC ⟹ RC robustness monotonicity (every
// lock-based-RC schedule is MVRC-admissible, so an MVRC-robust workload
// must be RC-robust) on randomized workloads, and the IsolationDemo
// workload on which the two policies' verdicts differ.

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "robust/detector.h"
#include "robust/masked_detector.h"
#include "robust/subsets.h"
#include "summary/build_summary.h"
#include "summary/isolation_policy.h"
#include "workloads/policy_demo.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

const IsolationPolicy& Mvrc() { return GetPolicy(IsolationLevel::kMvrc); }
const IsolationPolicy& Rc() { return GetPolicy(IsolationLevel::kRc); }

constexpr StatementType kAllTypes[] = {
    StatementType::kInsert,    StatementType::kKeySelect,  StatementType::kPredSelect,
    StatementType::kKeyUpdate, StatementType::kPredUpdate, StatementType::kKeyDelete,
    StatementType::kPredDelete,
};

TEST(IsolationPolicyTest, SingletonsAndNames) {
  EXPECT_EQ(Mvrc().level(), IsolationLevel::kMvrc);
  EXPECT_EQ(Rc().level(), IsolationLevel::kRc);
  EXPECT_STREQ(Mvrc().name(), "mvrc");
  EXPECT_STREQ(Rc().name(), "rc");
  EXPECT_EQ(&GetPolicy(IsolationLevel::kMvrc), &Mvrc());  // process-lifetime singletons
  EXPECT_EQ(Mvrc().closure(), CycleClosure::kThroughNonCounterflowEdge);
  EXPECT_EQ(Rc().closure(), CycleClosure::kDirect);
}

TEST(IsolationPolicyTest, ParseIsolationLevelRoundTrips) {
  for (IsolationLevel level : {IsolationLevel::kMvrc, IsolationLevel::kRc}) {
    std::optional<IsolationLevel> parsed = ParseIsolationLevel(ToString(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseIsolationLevel("").has_value());
  EXPECT_FALSE(ParseIsolationLevel("si").has_value());
  EXPECT_FALSE(ParseIsolationLevel("MVRC").has_value());
}

// Both shipped policies share Table 1 (see isolation_policy.h for why the
// lock-based RC restriction lives entirely in the condition clause).
TEST(IsolationPolicyTest, ShippedPoliciesShareTable1) {
  for (StatementType qi : kAllTypes) {
    for (StatementType qj : kAllTypes) {
      EXPECT_EQ(Mvrc().NcDep(qi, qj), NcDepTable(qi, qj));
      EXPECT_EQ(Mvrc().CDep(qi, qj), CDepTable(qi, qj));
      EXPECT_EQ(Rc().NcDep(qi, qj), NcDepTable(qi, qj));
      EXPECT_EQ(Rc().CDep(qi, qj), CDepTable(qi, qj));
    }
  }
}

TEST(IsolationPolicyTest, CounterflowReadClause) {
  for (StatementType type : kAllTypes) {
    EXPECT_TRUE(Mvrc().CounterflowReadClauseApplies(type));
    // Lock-based RC: a writing statement's key-based reads sit behind its
    // own exclusive locks, so they cannot source a counterflow
    // antidependency.
    EXPECT_EQ(Rc().CounterflowReadClauseApplies(type), !WritesTuples(type));
  }
}

TEST(IsolationPolicyTest, DangerousAdjacentPairTruthTable) {
  const StatementType read_like = StatementType::kPredUpdate;
  const StatementType write_like = StatementType::kInsert;

  // MVRC (Theorem 6.4): counterflow e3, or strict occurrence order, or
  // read-like e3 source.
  EXPECT_TRUE(Mvrc().DangerousAdjacentPair(true, 0, write_like, 5));
  EXPECT_TRUE(Mvrc().DangerousAdjacentPair(false, 3, write_like, 1));
  EXPECT_TRUE(Mvrc().DangerousAdjacentPair(false, 0, read_like, 5));
  EXPECT_FALSE(Mvrc().DangerousAdjacentPair(false, 0, write_like, 5));

  // Lock-based RC: non-counterflow e3 AND strict occurrence order; the
  // multiversion read-like escape and the adjacent-counterflow case are
  // blocked by the split program's exclusive locks.
  EXPECT_TRUE(Rc().DangerousAdjacentPair(false, 3, write_like, 1));
  EXPECT_TRUE(Rc().DangerousAdjacentPair(false, 3, read_like, 1));
  EXPECT_FALSE(Rc().DangerousAdjacentPair(true, 3, read_like, 1));
  EXPECT_FALSE(Rc().DangerousAdjacentPair(false, 0, read_like, 5));
  EXPECT_FALSE(Rc().DangerousAdjacentPair(false, 3, write_like, 3));
}

// A pred upd source whose ReadSet (but not PReadSet) overlaps the target's
// write set: counterflow under MVRC, suppressed under lock-based RC.
TEST(IsolationPolicyTest, RcDropsWritingSourceReadClauseEdges) {
  Schema schema;
  RelationId rel = schema.AddRelation("R", {"id", "flag", "val"}, {"id"});
  const AttrSet flag = schema.MakeAttrSet(rel, {"flag"});
  const AttrSet val = schema.MakeAttrSet(rel, {"val"});

  Btp writer("Writer");
  // pred upd: PRead={flag}, Read={val}, Write={flag} — the ReadSet clause is
  // its only route to a counterflow edge against a val-writer.
  writer.AddStatement(Statement::PredUpdate("q1", schema, rel, flag, val, flag));
  Btp updater("Updater");
  updater.AddStatement(Statement::KeyUpdate("q2", schema, rel, AttrSet{}, val));

  const AnalysisSettings mvrc = AnalysisSettings::AttrDep();
  const AnalysisSettings rc = AnalysisSettings::AttrDep().WithIsolation(IsolationLevel::kRc);
  std::vector<Ltp> ltps = UnfoldAtMost2({writer, updater});
  ASSERT_EQ(ltps.size(), 2u);

  // Legacy per-pair evaluator.
  std::vector<SummaryEdge> mvrc_cell = SummaryEdgesBetween(ltps[0], 0, ltps[1], 1, mvrc);
  std::vector<SummaryEdge> rc_cell = SummaryEdgesBetween(ltps[0], 0, ltps[1], 1, rc);
  const auto count_cf = [](const std::vector<SummaryEdge>& edges) {
    int cf = 0;
    for (const SummaryEdge& edge : edges) cf += edge.counterflow ? 1 : 0;
    return cf;
  };
  EXPECT_EQ(count_cf(mvrc_cell), 1);
  EXPECT_EQ(count_cf(rc_cell), 0);
  // Non-counterflow edges are isolation-independent.
  EXPECT_EQ(static_cast<int>(mvrc_cell.size()) - count_cf(mvrc_cell),
            static_cast<int>(rc_cell.size()) - count_cf(rc_cell));

  // The interned builder agrees with the legacy evaluator under both
  // policies.
  for (const AnalysisSettings& settings : {mvrc, rc}) {
    SummaryGraph interned = BuildSummaryGraph(ltps, settings, nullptr);
    SummaryGraph legacy = BuildSummaryGraphLegacy(ltps, settings);
    EXPECT_EQ(interned.edges(), legacy.edges()) << settings.name();
  }

  // A key sel source keeps its ReadSet clause under RC (it takes no locks).
  Btp reader("Reader");
  reader.AddStatement(Statement::KeySelect("q3", schema, rel, val));
  std::vector<Ltp> reader_ltps = UnfoldAtMost2({reader, updater});
  EXPECT_EQ(count_cf(SummaryEdgesBetween(reader_ltps[0], 0, reader_ltps[1], 1, rc)), 1);
}

// --- The demo workload: MVRC and lock-based RC verdicts differ. -----------

TEST(IsolationPolicyTest, IsolationDemoSeparatesPolicies) {
  Workload demo = MakeIsolationDemo();
  for (const AnalysisSettings& base :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
        AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()}) {
    SCOPED_TRACE(base.name());
    EXPECT_FALSE(IsRobustUnder(demo.programs, base, Method::kTypeII));
    EXPECT_TRUE(
        IsRobustUnder(demo.programs, base.WithIsolation(IsolationLevel::kRc), Method::kTypeII));

    // The witness under MVRC uses the read-like-source escape: the closing
    // edge re-enters Monitor at the same occurrence as the split read.
    SummaryGraph graph = BuildSummaryGraph(UnfoldAtMost2(demo.programs), base);
    std::optional<TypeIIWitness> mvrc_witness = FindTypeIICycle(graph, Mvrc());
    ASSERT_TRUE(mvrc_witness.has_value());
    EXPECT_FALSE(FindRcSplitCycle(graph, Rc()).has_value());
    CycleTestOutcome rc_outcome = RunCycleTest(graph, Method::kTypeII, Rc());
    EXPECT_TRUE(rc_outcome.robust);
    EXPECT_TRUE(rc_outcome.witness.empty());
  }
}

// A classic lost-update shape is non-robust under BOTH policies, and the RC
// split witness is structurally coherent.
TEST(IsolationPolicyTest, LostUpdateIsNonRobustUnderRcWithCoherentWitness) {
  Schema schema;
  RelationId rel = schema.AddRelation("R", {"id", "val"}, {"id"});
  const AttrSet val = schema.MakeAttrSet(rel, {"val"});

  // ReadThenWrite: key sel R Read={val}; key upd R Write={val}.
  Btp rtw("ReadThenWrite");
  rtw.AddStatement(Statement::KeySelect("q1", schema, rel, val));
  rtw.AddStatement(Statement::KeyUpdate("q2", schema, rel, AttrSet{}, val));
  // Blind writer.
  Btp writer("Writer");
  writer.AddStatement(Statement::KeyUpdate("q3", schema, rel, AttrSet{}, val));

  for (const AnalysisSettings& base : {AnalysisSettings::AttrDep(), AnalysisSettings::TupleDep()}) {
    SCOPED_TRACE(base.name());
    const AnalysisSettings rc = base.WithIsolation(IsolationLevel::kRc);
    EXPECT_FALSE(IsRobustUnder({rtw, writer}, base, Method::kTypeII));
    EXPECT_FALSE(IsRobustUnder({rtw, writer}, rc, Method::kTypeII));

    SummaryGraph graph = BuildSummaryGraph(UnfoldAtMost2({rtw, writer}), rc);
    std::optional<RcSplitWitness> witness = FindRcSplitCycle(graph, Rc());
    ASSERT_TRUE(witness.has_value());
    // Both edges meet at the split program; the split read strictly
    // precedes the closing dependency's target.
    EXPECT_EQ(witness->incoming.to_program, witness->outgoing.from_program);
    EXPECT_FALSE(witness->incoming.counterflow);
    EXPECT_TRUE(witness->outgoing.counterflow);
    EXPECT_LT(witness->outgoing.from_occ, witness->incoming.to_occ);
    // The return path leads from the counterflow target to the closing
    // edge's source.
    ASSERT_FALSE(witness->return_path.empty());
    EXPECT_EQ(witness->return_path.front(), witness->outgoing.to_program);
    EXPECT_EQ(witness->return_path.back(), witness->incoming.from_program);
    EXPECT_FALSE(witness->Describe(graph).empty());
  }
}

// --- Randomized monotonicity + masked-detector parity under RC. -----------

// Mirrors the generator idiom of tests/masked_detector_test.cc.
class RandomWorkloadGen {
 public:
  explicit RandomWorkloadGen(uint64_t seed) : rng_(seed) {}

  std::vector<Btp> Generate(Schema& schema) {
    const int num_relations = Pick(2, 3);
    for (int r = 0; r < num_relations; ++r) {
      std::vector<std::string> attrs;
      const int num_attrs = Pick(2, 4);
      for (int a = 0; a < num_attrs; ++a) {
        attrs.push_back("a" + std::to_string(r) + std::to_string(a));
      }
      schema.AddRelation("R" + std::to_string(r), attrs, {attrs[0]});
    }
    for (int r = 1; r < num_relations; ++r) {
      if (Chance(0.5)) schema.AddForeignKey("f" + std::to_string(r), r, {}, 0);
    }
    std::vector<Btp> programs;
    const int num_programs = Pick(4, 5);
    for (int p = 0; p < num_programs; ++p) programs.push_back(GenerateProgram(schema, p));
    return programs;
  }

 private:
  int Pick(int lo, int hi) { return lo + static_cast<int>(rng_() % (hi - lo + 1)); }
  bool Chance(double p) { return (rng_() % 1000) < p * 1000; }

  AttrSet RandomSubset(const Schema& schema, RelationId rel, bool non_empty) {
    AttrSet set;
    const int n = schema.relation(rel).num_attrs();
    for (int a = 0; a < n; ++a) {
      if (Chance(0.45)) set.Insert(a);
    }
    if (non_empty && set.empty()) set.Insert(static_cast<AttrId>(rng_() % n));
    return set;
  }

  Statement RandomStatement(const Schema& schema, const std::string& label) {
    RelationId rel = static_cast<RelationId>(rng_() % schema.num_relations());
    switch (rng_() % 7) {
      case 0:
        return Statement::Insert(label, schema, rel);
      case 1:
        return Statement::KeySelect(label, schema, rel, RandomSubset(schema, rel, false));
      case 2:
        return Statement::PredSelect(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false));
      case 3:
        return Statement::KeyUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                    RandomSubset(schema, rel, true));
      case 4:
        return Statement::PredUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, true));
      case 5:
        return Statement::KeyDelete(label, schema, rel);
      default:
        return Statement::PredDelete(label, schema, rel, RandomSubset(schema, rel, false));
    }
  }

  Btp GenerateProgram(const Schema& schema, int index) {
    Btp program("P" + std::to_string(index));
    const int num_statements = Pick(2, 4);
    std::vector<StmtId> ids;
    for (int q = 0; q < num_statements; ++q) {
      ids.push_back(program.AddStatement(RandomStatement(schema, "q" + std::to_string(q + 1))));
    }
    std::vector<Btp::NodeId> nodes;
    for (StmtId id : ids) nodes.push_back(program.Stmt(id));
    if (num_statements >= 2 && Chance(0.5)) {
      const int from = Pick(0, num_statements - 2);
      const int to = Pick(from + 1, num_statements - 1);
      std::vector<Btp::NodeId> inner(nodes.begin() + from, nodes.begin() + to + 1);
      Btp::NodeId wrapped;
      switch (rng_() % 3) {
        case 0:
          wrapped = program.Loop(program.Seq(inner));
          break;
        case 1:
          wrapped = program.Optional(program.Seq(inner));
          break;
        default:
          wrapped = program.Choice(program.Seq(inner), program.Stmt(ids[from]));
          break;
      }
      std::vector<Btp::NodeId> rebuilt(nodes.begin(), nodes.begin() + from);
      rebuilt.push_back(wrapped);
      rebuilt.insert(rebuilt.end(), nodes.begin() + to + 1, nodes.end());
      nodes = std::move(rebuilt);
    }
    program.Finish(program.Seq(nodes));
    return program;
  }

  std::mt19937_64 rng_;
};

struct GraphUnderTest {
  SummaryGraph graph;
  std::vector<std::pair<int, int>> ltp_range;
};

GraphUnderTest Build(const std::vector<Btp>& programs, const AnalysisSettings& settings) {
  std::vector<Ltp> all_ltps;
  std::vector<std::pair<int, int>> ltp_range;
  for (const Btp& program : programs) {
    std::vector<Ltp> unfolded = UnfoldAtMost2(program);
    ltp_range.push_back({static_cast<int>(all_ltps.size()),
                         static_cast<int>(all_ltps.size() + unfolded.size())});
    for (Ltp& ltp : unfolded) all_ltps.push_back(std::move(ltp));
  }
  return {BuildSummaryGraph(std::move(all_ltps), settings), std::move(ltp_range)};
}

std::vector<bool> KeepFor(uint32_t mask, const GraphUnderTest& t) {
  std::vector<bool> keep(t.graph.num_programs(), false);
  for (size_t i = 0; i < t.ltp_range.size(); ++i) {
    if ((mask >> i) & 1) {
      for (int p = t.ltp_range[i].first; p < t.ltp_range[i].second; ++p) keep[p] = true;
    }
  }
  return keep;
}

class IsolationPolicyRandomTest : public ::testing::TestWithParam<int> {};

// For every mask of every seeded workload: (1) the RC masked detector
// agrees with graph-level FindRcSplitCycle on the induced subgraph
// (verdict AND witness), (2) interned build == legacy build under RC,
// (3) MVRC-robust implies RC-robust.
TEST_P(IsolationPolicyRandomTest, RcMaskedParityAndMonotonicity) {
  RandomWorkloadGen gen(GetParam() * 40933 + 5);
  Schema schema;
  std::vector<Btp> programs = gen.Generate(schema);
  for (const AnalysisSettings& base :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDepFk()}) {
    const AnalysisSettings rc = base.WithIsolation(IsolationLevel::kRc);
    const std::string context =
        "seed=" + std::to_string(GetParam()) + " / " + std::string(rc.name());

    GraphUnderTest t = Build(programs, rc);
    {
      std::vector<Ltp> ltps;
      for (int p = 0; p < t.graph.num_programs(); ++p) ltps.push_back(t.graph.program(p));
      SummaryGraph legacy = BuildSummaryGraphLegacy(std::move(ltps), rc);
      ASSERT_EQ(t.graph.edges(), legacy.edges()) << context;
    }

    GraphUnderTest mvrc_t = Build(programs, base);
    MaskedDetector rc_detector(t.graph, t.ltp_range, Rc());
    MaskedDetector mvrc_detector(mvrc_t.graph, mvrc_t.ltp_range, Mvrc());
    DetectorScratch rc_scratch = rc_detector.MakeScratch();
    DetectorScratch mvrc_scratch = mvrc_detector.MakeScratch();

    const uint32_t full = (uint32_t{1} << programs.size()) - 1;
    for (uint32_t mask = 1; mask <= full; ++mask) {
      SummaryGraph induced = t.graph.InducedSubgraph(KeepFor(mask, t));
      std::optional<RcSplitWitness> oracle = FindRcSplitCycle(induced, Rc());
      std::optional<RcSplitWitness> masked = rc_detector.FindRcSplitCycle(mask, rc_scratch);
      ASSERT_EQ(masked.has_value(), oracle.has_value()) << context << " mask=" << mask;
      EXPECT_EQ(rc_detector.HasRcSplitCycle(mask, rc_scratch), oracle.has_value())
          << context << " mask=" << mask;
      const bool rc_robust = rc_detector.IsRobust(mask, Method::kTypeII, rc_scratch);
      EXPECT_EQ(rc_robust, !oracle.has_value()) << context << " mask=" << mask;
      if (oracle.has_value()) {
        EXPECT_EQ(masked->Describe(t.graph), oracle->Describe(induced))
            << context << " mask=" << mask;
      }
      if (mvrc_detector.IsRobust(mask, Method::kTypeII, mvrc_scratch)) {
        EXPECT_TRUE(rc_robust) << context << " mask=" << mask
                               << ": MVRC-robust but not RC-robust (monotonicity violated)";
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolationPolicyRandomTest, ::testing::Range(0, 20));

// Subset sweeps under RC flow through the same Proposition 5.2 machinery;
// the sweep's robust masks must equal per-mask detector verdicts.
TEST(IsolationPolicyTest, RcSubsetSweepMatchesPerMaskVerdicts) {
  for (const Workload& workload : {MakeSmallBank(), MakeIsolationDemo()}) {
    const AnalysisSettings rc =
        AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc);
    GraphUnderTest t = Build(workload.programs, rc);
    MaskedDetector detector(t.graph, t.ltp_range, Rc());
    DetectorScratch scratch = detector.MakeScratch();
    Result<SubsetReport> report = TryAnalyzeSubsets(workload.programs, rc, Method::kTypeII);
    ASSERT_TRUE(report.ok());
    const uint32_t full = (uint32_t{1} << workload.programs.size()) - 1;
    for (uint32_t mask = 1; mask <= full; ++mask) {
      EXPECT_EQ(report.value().IsRobustSubset(mask),
                detector.IsRobust(mask, Method::kTypeII, scratch))
          << workload.name << " mask=" << mask;
    }
  }
}

}  // namespace
}  // namespace mvrc
