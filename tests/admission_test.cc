// The admission controller is the request-level backpressure primitive under
// real concurrency: N threads hammering the gate must never observe more
// than max_inflight admitted at once, every admit must pair with exactly one
// release, and the shed count (and its protocol.shed metric) must equal the
// number of refusals — no lost or double-counted slots under contention.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "service/admission.h"
#include "service/protocol.h"
#include "service/session_manager.h"

namespace mvrc {
namespace {

TEST(AdmissionControllerTest, ConcurrentHammeringNeverExceedsTheCap) {
  constexpr int kCap = 4;
  constexpr int kThreads = 16;
  constexpr int kAttemptsPerThread = 5000;

  AdmissionController gate(kCap);
  std::atomic<int> inside{0};
  std::atomic<int> max_seen{0};
  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> rejected{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (!gate.TryEnter()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const int now = inside.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = max_seen.load(std::memory_order_relaxed);
        while (now > seen &&
               !max_seen.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
        }
        admitted.fetch_add(1, std::memory_order_relaxed);
        // A tiny critical section so slots actually overlap across threads.
        if (i % 7 == 0) std::this_thread::yield();
        inside.fetch_sub(1, std::memory_order_acq_rel);
        gate.Exit();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_GT(max_seen.load(), 1) << "no concurrency was exercised";
  EXPECT_LE(max_seen.load(), kCap);
  EXPECT_EQ(gate.inflight(), 0);
  EXPECT_EQ(gate.shed(), rejected.load());
  EXPECT_EQ(admitted.load() + rejected.load(),
            static_cast<int64_t>(kThreads) * kAttemptsPerThread);
}

TEST(AdmissionControllerTest, ShedMetricTracksProtocolLevelRejections) {
  // A zero-capacity gate sheds every request; the protocol must answer each
  // with a retryable error and bump protocol.shed accordingly.
  AdmissionController gate(0);
  SessionManager manager(1);
  ProtocolOptions options;
  options.admission = &gate;

  Counter* shed_metric = MetricsRegistry::Global().counter("protocol.shed");
  const int64_t metric_before = shed_metric->Value();

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> retryable_errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string response = HandleRequestLine(
            manager, "{\"cmd\":\"check\",\"session\":\"s\"}", options);
        if (response.find("\"retryable\":true") != std::string::npos) {
          retryable_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr int64_t kTotal = static_cast<int64_t>(kThreads) * kRequestsPerThread;
  EXPECT_EQ(retryable_errors.load(), kTotal);
  EXPECT_EQ(gate.shed(), kTotal);
  EXPECT_EQ(shed_metric->Value() - metric_before, kTotal);
}

TEST(AdmissionControllerTest, SlotRaiiReleasesOnlyWhenAdmitted) {
  AdmissionController gate(1);
  {
    AdmissionController::Slot first(&gate);
    EXPECT_TRUE(first.admitted());
    EXPECT_EQ(gate.inflight(), 1);
    AdmissionController::Slot second(&gate);
    EXPECT_FALSE(second.admitted());
    EXPECT_EQ(gate.inflight(), 1);  // a refused slot must not release
  }
  EXPECT_EQ(gate.inflight(), 0);
  EXPECT_EQ(gate.shed(), 1);
  AdmissionController::Slot null_gate(nullptr);
  EXPECT_TRUE(null_gate.admitted());
}

}  // namespace
}  // namespace mvrc
