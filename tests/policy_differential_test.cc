// The policy-refactor pinning suite: the MVRC pipeline routed through the
// IsolationPolicy layer must be bit-identical to the pre-refactor code. The
// oracle below is a frozen copy of the pre-policy logic — Table 1, the
// ncDepConds/cDepConds clauses (including the foreign-key suppression
// loop), the per-pair edge emission, and the type-I / type-II cycle
// searches (both the optimized boolean-matrix implementation and literal
// Algorithm 2) with the read-like-source disjunct hardcoded. Any drift the
// policy dispatch introduces in edge arenas, verdicts or witnesses fails
// here, on 20 seeded random workloads and the builtin benchmarks across all
// four granularity/FK settings.

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "robust/detector.h"
#include "robust/subsets.h"
#include "summary/build_summary.h"
#include "util/bits.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

// --------------------------------------------------------------------------
// Frozen pre-refactor oracle (do not modernize: this code intentionally
// replicates the pipeline as it was before the IsolationPolicy layer).
// --------------------------------------------------------------------------

constexpr int kIns = 0, kKeySel = 1, kPredSel = 2, kKeyUpd = 3, kPredUpd = 4,
              kKeyDel = 5, kPredDel = 6;

int OracleTableIndex(StatementType type) {
  switch (type) {
    case StatementType::kInsert:
      return kIns;
    case StatementType::kKeySelect:
      return kKeySel;
    case StatementType::kPredSelect:
      return kPredSel;
    case StatementType::kKeyUpdate:
      return kKeyUpd;
    case StatementType::kPredUpdate:
      return kPredUpd;
    case StatementType::kKeyDelete:
      return kKeyDel;
    case StatementType::kPredDelete:
      return kPredDel;
  }
  return -1;
}

enum class OracleEntry { kFalse, kTrue, kCheck };
constexpr OracleEntry F = OracleEntry::kFalse;
constexpr OracleEntry T = OracleEntry::kTrue;
constexpr OracleEntry C = OracleEntry::kCheck;

constexpr OracleEntry kOracleNcDepTable[7][7] = {
    /* ins      */ {F, C, T, C, T, C, T},
    /* key sel  */ {F, F, F, C, C, C, C},
    /* pred sel */ {T, F, F, C, C, T, T},
    /* key upd  */ {F, C, C, C, C, C, C},
    /* pred upd */ {T, C, C, C, C, T, T},
    /* key del  */ {F, F, T, F, T, F, T},
    /* pred del */ {T, F, T, C, T, T, T},
};

constexpr OracleEntry kOracleCDepTable[7][7] = {
    /* ins      */ {F, F, F, F, F, F, F},
    /* key sel  */ {F, F, F, C, C, C, C},
    /* pred sel */ {T, F, F, C, C, T, T},
    /* key upd  */ {F, F, F, F, F, F, F},
    /* pred upd */ {T, F, F, C, C, T, T},
    /* key del  */ {F, F, F, F, F, F, F},
    /* pred del */ {T, F, F, C, C, T, T},
};

bool OracleAttrConflicts(const std::optional<AttrSet>& a, const std::optional<AttrSet>& b,
                         Granularity granularity) {
  if (!a.has_value() || !b.has_value()) return false;
  if (granularity == Granularity::kTuple) return true;
  return a->Intersects(*b);
}

bool OracleNcDepConds(const Statement& qi, const Statement& qj, Granularity g) {
  return OracleAttrConflicts(qi.write_set(), qj.write_set(), g) ||
         OracleAttrConflicts(qi.write_set(), qj.read_set(), g) ||
         OracleAttrConflicts(qi.write_set(), qj.pread_set(), g) ||
         OracleAttrConflicts(qi.read_set(), qj.write_set(), g) ||
         OracleAttrConflicts(qi.pread_set(), qj.write_set(), g);
}

bool OracleCDepConds(const Ltp& pi, int qi_pos, const Ltp& pj, int qj_pos,
                     const AnalysisSettings& settings) {
  const Statement& qi = pi.stmt(qi_pos);
  const Statement& qj = pj.stmt(qj_pos);
  if (OracleAttrConflicts(qi.pread_set(), qj.write_set(), settings.granularity)) {
    return true;
  }
  if (OracleAttrConflicts(qi.read_set(), qj.write_set(), settings.granularity)) {
    if (settings.use_foreign_keys) {
      for (const OccFkConstraint& ci : pi.constraints()) {
        if (ci.child_pos != qi_pos) continue;
        StatementType tk = pi.stmt(ci.parent_pos).type();
        if (tk != StatementType::kKeyUpdate && tk != StatementType::kKeyDelete &&
            tk != StatementType::kInsert) {
          continue;
        }
        if (!(ci.parent_pos < qi_pos)) continue;
        for (const OccFkConstraint& cj : pj.constraints()) {
          if (cj.child_pos != qj_pos || cj.fk != ci.fk) continue;
          StatementType tl = pj.stmt(cj.parent_pos).type();
          if (tl != StatementType::kKeyUpdate && tl != StatementType::kKeyDelete &&
              tl != StatementType::kInsert) {
            continue;
          }
          if (!(cj.parent_pos < qj_pos)) continue;
          return false;
        }
      }
    }
    return true;
  }
  return false;
}

bool OracleAllowsNonCounterflow(const Statement& qi, const Statement& qj, Granularity g) {
  switch (kOracleNcDepTable[OracleTableIndex(qi.type())][OracleTableIndex(qj.type())]) {
    case OracleEntry::kTrue:
      return true;
    case OracleEntry::kFalse:
      return false;
    case OracleEntry::kCheck:
      return OracleNcDepConds(qi, qj, g);
  }
  return false;
}

bool OracleAllowsCounterflow(const Ltp& pi, int qi_pos, const Ltp& pj, int qj_pos,
                             const AnalysisSettings& settings) {
  switch (kOracleCDepTable[OracleTableIndex(pi.stmt(qi_pos).type())]
                          [OracleTableIndex(pj.stmt(qj_pos).type())]) {
    case OracleEntry::kTrue:
      return true;
    case OracleEntry::kFalse:
      return false;
    case OracleEntry::kCheck:
      return OracleCDepConds(pi, qi_pos, pj, qj_pos, settings);
  }
  return false;
}

// The pre-interning serial build: per-pair cells in row-major order.
SummaryGraph OracleBuild(std::vector<Ltp> programs, const AnalysisSettings& settings) {
  SummaryGraph graph(std::move(programs));
  const int n = graph.num_programs();
  for (int pi = 0; pi < n; ++pi) {
    for (int pj = 0; pj < n; ++pj) {
      const Ltp& from = graph.program(pi);
      const Ltp& to = graph.program(pj);
      for (int qi = 0; qi < from.size(); ++qi) {
        for (int qj = 0; qj < to.size(); ++qj) {
          if (from.stmt(qi).rel() != to.stmt(qj).rel()) continue;
          if (OracleAllowsNonCounterflow(from.stmt(qi), to.stmt(qj), settings.granularity)) {
            graph.AddEdge({pi, qi, /*counterflow=*/false, qj, pj});
          }
          if (OracleAllowsCounterflow(from, qi, to, qj, settings)) {
            graph.AddEdge({pi, qi, /*counterflow=*/true, qj, pj});
          }
        }
      }
    }
  }
  graph.FinalizeIndex();
  return graph;
}

bool OracleIsReadLikeSourceType(StatementType type) {
  switch (type) {
    case StatementType::kKeySelect:
    case StatementType::kPredSelect:
    case StatementType::kPredUpdate:
    case StatementType::kPredDelete:
      return true;
    default:
      return false;
  }
}

bool OracleAdjacentPairCondition(const SummaryGraph& graph, const SummaryEdge& e3,
                                 const SummaryEdge& e4) {
  if (e3.counterflow) return true;
  if (e4.from_occ < e3.to_occ) return true;
  const Statement& q3 = graph.program(e3.from_program).stmt(e3.from_occ);
  return OracleIsReadLikeSourceType(q3.type());
}

class OracleBoolMatrix {
 public:
  explicit OracleBoolMatrix(int n) : n_(n), words_(static_cast<size_t>(n) * WordsPerRow(), 0) {}
  int WordsPerRow() const { return (n_ + 63) / 64; }
  void Set(int r, int c) { row(r)[c / 64] |= uint64_t{1} << (c % 64); }
  bool At(int r, int c) const { return (row(r)[c / 64] >> (c % 64)) & 1; }
  uint64_t* row(int r) { return words_.data() + static_cast<size_t>(r) * WordsPerRow(); }
  const uint64_t* row(int r) const {
    return words_.data() + static_cast<size_t>(r) * WordsPerRow();
  }

 private:
  int n_;
  std::vector<uint64_t> words_;
};

std::optional<TypeIWitness> OracleFindTypeICycle(const SummaryGraph& graph) {
  Digraph program_graph = graph.ProgramGraph();
  Digraph::Reachability reach = program_graph.ComputeReachability();
  for (const SummaryEdge& edge : graph.edges()) {
    if (!edge.counterflow) continue;
    if (reach.At(edge.to_program, edge.from_program)) {
      TypeIWitness witness;
      witness.edge = edge;
      witness.return_path = program_graph.ShortestPath(edge.to_program, edge.from_program);
      return witness;
    }
  }
  return std::nullopt;
}

std::optional<TypeIIWitness> OracleFindTypeIICycle(const SummaryGraph& graph) {
  const int n = graph.num_programs();
  if (n == 0) return std::nullopt;
  Digraph program_graph = graph.ProgramGraph();
  Digraph::Reachability reach = program_graph.ComputeReachability();

  OracleBoolMatrix nc_adj(n);
  bool any_nc = false;
  for (const SummaryEdge& edge : graph.edges()) {
    if (!edge.counterflow) {
      nc_adj.Set(edge.from_program, edge.to_program);
      any_nc = true;
    }
  }
  if (!any_nc) return std::nullopt;

  const int wpr = reach.words_per_row();
  OracleBoolMatrix through(n);
  std::vector<uint64_t> nc_targets(wpr);
  for (int y = 0; y < n; ++y) {
    std::fill(nc_targets.begin(), nc_targets.end(), 0);
    ForEachBit(reach.row(y), wpr, [&](int p1) {
      const uint64_t* nc_row = nc_adj.row(p1);
      for (int w = 0; w < wpr; ++w) nc_targets[w] |= nc_row[w];
    });
    uint64_t* through_row = through.row(y);
    ForEachBit(nc_targets.data(), wpr, [&](int p2) {
      const uint64_t* reach_row = reach.row(p2);
      for (int w = 0; w < wpr; ++w) through_row[w] |= reach_row[w];
    });
  }

  for (int p4 = 0; p4 < n; ++p4) {
    for (int e4_index : graph.OutEdges(p4)) {
      const SummaryEdge& e4 = graph.edges()[e4_index];
      if (!e4.counterflow) continue;
      for (int e3_index : graph.InEdges(p4)) {
        const SummaryEdge& e3 = graph.edges()[e3_index];
        if (!OracleAdjacentPairCondition(graph, e3, e4)) continue;
        if (!through.At(e4.to_program, e3.from_program)) continue;
        for (const SummaryEdge& e1 : graph.edges()) {
          if (e1.counterflow) continue;
          if (reach.At(e1.to_program, e3.from_program) &&
              reach.At(e4.to_program, e1.from_program)) {
            TypeIIWitness witness;
            witness.e1 = e1;
            witness.e3 = e3;
            witness.e4 = e4;
            witness.path_p2_to_p3 =
                program_graph.ShortestPath(e1.to_program, e3.from_program);
            witness.path_p5_to_p1 =
                program_graph.ShortestPath(e4.to_program, e1.from_program);
            return witness;
          }
        }
        ADD_FAILURE() << "oracle through-matrix inconsistent";
        return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

std::optional<TypeIIWitness> OracleFindTypeIICycleNaive(const SummaryGraph& graph) {
  Digraph program_graph = graph.ProgramGraph();
  Digraph::Reachability reach = program_graph.ComputeReachability();
  for (const SummaryEdge& e1 : graph.edges()) {
    if (e1.counterflow) continue;
    for (const SummaryEdge& e3 : graph.edges()) {
      if (!reach.At(e1.to_program, e3.from_program)) continue;
      for (int e4_index : graph.OutEdges(e3.to_program)) {
        const SummaryEdge& e4 = graph.edges()[e4_index];
        if (!e4.counterflow) continue;
        if (!reach.At(e4.to_program, e1.from_program)) continue;
        if (!OracleAdjacentPairCondition(graph, e3, e4)) continue;
        TypeIIWitness witness;
        witness.e1 = e1;
        witness.e3 = e3;
        witness.e4 = e4;
        witness.path_p2_to_p3 = program_graph.ShortestPath(e1.to_program, e3.from_program);
        witness.path_p5_to_p1 = program_graph.ShortestPath(e4.to_program, e1.from_program);
        return witness;
      }
    }
  }
  return std::nullopt;
}

// --------------------------------------------------------------------------
// The pinning harness.
// --------------------------------------------------------------------------

struct GraphUnderTest {
  SummaryGraph graph;
  std::vector<std::pair<int, int>> ltp_range;
};

GraphUnderTest Build(const std::vector<Btp>& programs, const AnalysisSettings& settings) {
  std::vector<Ltp> all_ltps;
  std::vector<std::pair<int, int>> ltp_range;
  for (const Btp& program : programs) {
    std::vector<Ltp> unfolded = UnfoldAtMost2(program);
    ltp_range.push_back({static_cast<int>(all_ltps.size()),
                         static_cast<int>(all_ltps.size() + unfolded.size())});
    for (Ltp& ltp : unfolded) all_ltps.push_back(std::move(ltp));
  }
  return {BuildSummaryGraph(std::move(all_ltps), settings), std::move(ltp_range)};
}

const AnalysisSettings kAllSettings[] = {
    AnalysisSettings::TupleDep(),
    AnalysisSettings::AttrDep(),
    AnalysisSettings::TupleDepFk(),
    AnalysisSettings::AttrDepFk(),
};

// Pins the refactored pipeline against the frozen oracle: edge arena,
// verdicts under every method, and witnesses.
void ExpectPinnedToOracle(const std::vector<Btp>& programs, const AnalysisSettings& settings,
                          const std::string& context) {
  SCOPED_TRACE(context);
  GraphUnderTest t = Build(programs, settings);
  SummaryGraph oracle =
      OracleBuild(std::vector<Ltp>(t.graph.programs()), settings);

  ASSERT_EQ(t.graph.edges(), oracle.edges());
  ASSERT_EQ(t.graph.num_counterflow_edges(), oracle.num_counterflow_edges());

  std::optional<TypeIWitness> oracle1 = OracleFindTypeICycle(oracle);
  std::optional<TypeIWitness> refactored1 = FindTypeICycle(t.graph);
  ASSERT_EQ(refactored1.has_value(), oracle1.has_value());
  if (oracle1.has_value()) {
    EXPECT_EQ(refactored1->Describe(t.graph), oracle1->Describe(oracle));
  }

  std::optional<TypeIIWitness> oracle2 = OracleFindTypeIICycle(oracle);
  std::optional<TypeIIWitness> refactored2 = FindTypeIICycle(t.graph);
  ASSERT_EQ(refactored2.has_value(), oracle2.has_value());
  if (oracle2.has_value()) {
    EXPECT_EQ(refactored2->Describe(t.graph), oracle2->Describe(oracle));
  }

  std::optional<TypeIIWitness> oracle2n = OracleFindTypeIICycleNaive(oracle);
  std::optional<TypeIIWitness> refactored2n = FindTypeIICycleNaive(t.graph);
  ASSERT_EQ(refactored2n.has_value(), oracle2n.has_value());
  if (oracle2n.has_value()) {
    EXPECT_EQ(refactored2n->Describe(t.graph), oracle2n->Describe(oracle));
  }

  EXPECT_EQ(IsRobust(t.graph, Method::kTypeI), !oracle1.has_value());
  EXPECT_EQ(IsRobust(t.graph, Method::kTypeII), !oracle2.has_value());
  EXPECT_EQ(IsRobust(t.graph, Method::kTypeIINaive), !oracle2n.has_value());
}

// Pins the subset sweep: every mask's verdict equals the oracle run on the
// oracle-built induced subgraph. Only called for sweep-sized workloads.
void ExpectSweepPinnedToOracle(const std::vector<Btp>& programs,
                               const AnalysisSettings& settings, const std::string& context) {
  SCOPED_TRACE(context);
  GraphUnderTest t = Build(programs, settings);
  Result<SubsetReport> report = TryAnalyzeSubsets(programs, settings, Method::kTypeII);
  ASSERT_TRUE(report.ok());
  const uint32_t full = (uint32_t{1} << programs.size()) - 1;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    std::vector<bool> keep(t.graph.num_programs(), false);
    for (size_t i = 0; i < t.ltp_range.size(); ++i) {
      if ((mask >> i) & 1) {
        for (int p = t.ltp_range[i].first; p < t.ltp_range[i].second; ++p) keep[p] = true;
      }
    }
    SummaryGraph induced = t.graph.InducedSubgraph(keep);
    SummaryGraph induced_oracle =
        OracleBuild(std::vector<Ltp>(induced.programs()), settings);
    ASSERT_EQ(induced.edges(), induced_oracle.edges()) << "mask=" << mask;
    EXPECT_EQ(report.value().IsRobustSubset(mask),
              !OracleFindTypeIICycle(induced_oracle).has_value())
        << "mask=" << mask;
  }
}

// Mirrors the generator idiom of tests/masked_detector_test.cc (same seeds
// as the masked-detector differential: these are "the 20-seed random
// workloads").
class RandomWorkloadGen {
 public:
  explicit RandomWorkloadGen(uint64_t seed) : rng_(seed) {}

  std::vector<Btp> Generate(Schema& schema) {
    const int num_relations = Pick(2, 3);
    for (int r = 0; r < num_relations; ++r) {
      std::vector<std::string> attrs;
      const int num_attrs = Pick(2, 4);
      for (int a = 0; a < num_attrs; ++a) {
        attrs.push_back("a" + std::to_string(r) + std::to_string(a));
      }
      schema.AddRelation("R" + std::to_string(r), attrs, {attrs[0]});
    }
    for (int r = 1; r < num_relations; ++r) {
      if (Chance(0.5)) schema.AddForeignKey("f" + std::to_string(r), r, {}, 0);
    }
    std::vector<Btp> programs;
    const int num_programs = Pick(4, 5);
    for (int p = 0; p < num_programs; ++p) programs.push_back(GenerateProgram(schema, p));
    return programs;
  }

 private:
  int Pick(int lo, int hi) { return lo + static_cast<int>(rng_() % (hi - lo + 1)); }
  bool Chance(double p) { return (rng_() % 1000) < p * 1000; }

  AttrSet RandomSubset(const Schema& schema, RelationId rel, bool non_empty) {
    AttrSet set;
    const int n = schema.relation(rel).num_attrs();
    for (int a = 0; a < n; ++a) {
      if (Chance(0.45)) set.Insert(a);
    }
    if (non_empty && set.empty()) set.Insert(static_cast<AttrId>(rng_() % n));
    return set;
  }

  Statement RandomStatement(const Schema& schema, const std::string& label) {
    RelationId rel = static_cast<RelationId>(rng_() % schema.num_relations());
    switch (rng_() % 7) {
      case 0:
        return Statement::Insert(label, schema, rel);
      case 1:
        return Statement::KeySelect(label, schema, rel, RandomSubset(schema, rel, false));
      case 2:
        return Statement::PredSelect(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false));
      case 3:
        return Statement::KeyUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                    RandomSubset(schema, rel, true));
      case 4:
        return Statement::PredUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, true));
      case 5:
        return Statement::KeyDelete(label, schema, rel);
      default:
        return Statement::PredDelete(label, schema, rel, RandomSubset(schema, rel, false));
    }
  }

  Btp GenerateProgram(const Schema& schema, int index) {
    Btp program("P" + std::to_string(index));
    const int num_statements = Pick(2, 4);
    std::vector<StmtId> ids;
    for (int q = 0; q < num_statements; ++q) {
      ids.push_back(program.AddStatement(RandomStatement(schema, "q" + std::to_string(q + 1))));
    }
    std::vector<Btp::NodeId> nodes;
    for (StmtId id : ids) nodes.push_back(program.Stmt(id));
    if (num_statements >= 2 && Chance(0.5)) {
      const int from = Pick(0, num_statements - 2);
      const int to = Pick(from + 1, num_statements - 1);
      std::vector<Btp::NodeId> inner(nodes.begin() + from, nodes.begin() + to + 1);
      Btp::NodeId wrapped;
      switch (rng_() % 3) {
        case 0:
          wrapped = program.Loop(program.Seq(inner));
          break;
        case 1:
          wrapped = program.Optional(program.Seq(inner));
          break;
        default:
          wrapped = program.Choice(program.Seq(inner), program.Stmt(ids[from]));
          break;
      }
      std::vector<Btp::NodeId> rebuilt(nodes.begin(), nodes.begin() + from);
      rebuilt.push_back(wrapped);
      rebuilt.insert(rebuilt.end(), nodes.begin() + to + 1, nodes.end());
      nodes = std::move(rebuilt);
    }
    program.Finish(program.Seq(nodes));
    return program;
  }

  std::mt19937_64 rng_;
};

class PolicyDifferentialRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyDifferentialRandomTest, MvrcPipelineIsBitIdenticalToPreRefactorOracle) {
  RandomWorkloadGen gen(GetParam() * 6271 + 17);
  Schema schema;
  std::vector<Btp> programs = gen.Generate(schema);
  for (const AnalysisSettings& settings : kAllSettings) {
    ExpectPinnedToOracle(programs, settings,
                         "seed=" + std::to_string(GetParam()) + " / " + settings.name());
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The subset sweep, pinned mask by mask on the most precise setting.
  ExpectSweepPinnedToOracle(programs, AnalysisSettings::AttrDepFk(),
                            "seed=" + std::to_string(GetParam()) + " / sweep");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyDifferentialRandomTest, ::testing::Range(0, 20));

TEST(PolicyDifferentialBuiltinTest, BuiltinsPinnedAcrossAllFourSettings) {
  for (const Workload& workload : {MakeSmallBank(), MakeTpcc(), MakeAuction()}) {
    for (const AnalysisSettings& settings : kAllSettings) {
      ExpectPinnedToOracle(workload.programs, settings,
                           workload.name + " / " + settings.name());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  ExpectSweepPinnedToOracle(MakeSmallBank().programs, AnalysisSettings::AttrDepFk(),
                            "SmallBank / sweep");
}

}  // namespace
}  // namespace mvrc
