// The framing layer is shared by both transports, so its contract is pinned
// hard here: LineFramer (buffer-fed, drives each TCP connection) and
// BoundedLineReader (fd-fed, drives stdio) must agree byte-for-byte on every
// chunking of the same stream — lines, CRLF stripping, blank lines, the
// --max-line-bytes overflow accounting, and the final unterminated line. On
// top of that, the fd reader's EINTR behavior is stress-tested with real
// signals: unrelated signals must be invisible (retry), a stop-flag signal
// must surface as kInterrupted, and no chunking+signal interleaving may ever
// corrupt or drop a line.

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/line_reader.h"

namespace mvrc {
namespace {

// ---------------------------------------------------------------------------
// LineFramer vs BoundedLineReader differential
// ---------------------------------------------------------------------------

struct FramedEvent {
  enum Kind { kLine, kOverflow } kind;
  // Line content; empty for overflow events (the output string's value is
  // unspecified on overflow, so the harness normalizes it away).
  std::string line;

  bool operator==(const FramedEvent& other) const {
    return kind == other.kind && line == other.line;
  }
};

FramedEvent MakeEvent(bool overflow, const std::string& line) {
  if (overflow) return {FramedEvent::kOverflow, ""};
  return {FramedEvent::kLine, line};
}

// Runs the whole stream through a LineFramer, feeding `chunk` bytes at a
// time, and returns the event sequence (Finish included).
std::vector<FramedEvent> FramerEvents(const std::string& stream, size_t chunk,
                                      size_t max_bytes) {
  LineFramer framer(max_bytes);
  std::vector<FramedEvent> events;
  std::string line;
  for (size_t offset = 0; offset < stream.size(); offset += chunk) {
    framer.Feed(stream.data() + offset, std::min(chunk, stream.size() - offset));
    while (true) {
      const LineFramer::Event event = framer.Next(&line);
      if (event == LineFramer::Event::kNone) break;
      events.push_back(MakeEvent(event == LineFramer::Event::kOverflow, line));
    }
  }
  while (true) {
    const LineFramer::Event event = framer.Finish(&line);
    if (event == LineFramer::Event::kNone) break;
    events.push_back(MakeEvent(event == LineFramer::Event::kOverflow, line));
  }
  return events;
}

// Runs the same stream through a BoundedLineReader over a pipe.
std::vector<FramedEvent> ReaderEvents(const std::string& stream, size_t max_bytes) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  std::thread writer([&] {
    size_t written = 0;
    while (written < stream.size()) {
      const ssize_t n = ::write(fds[1], stream.data() + written, stream.size() - written);
      if (n <= 0) break;
      written += static_cast<size_t>(n);
    }
    ::close(fds[1]);
  });
  BoundedLineReader reader(fds[0], max_bytes, nullptr);
  std::vector<FramedEvent> events;
  std::string line;
  bool done = false;
  while (!done) {
    switch (reader.Next(&line)) {
      case BoundedLineReader::Event::kLine:
        events.push_back(MakeEvent(false, line));
        break;
      case BoundedLineReader::Event::kOverflow:
        events.push_back(MakeEvent(true, line));
        break;
      case BoundedLineReader::Event::kEof:
      case BoundedLineReader::Event::kInterrupted:
        done = true;
        break;
    }
  }
  writer.join();
  ::close(fds[0]);
  return events;
}

TEST(LineFramerDifferentialTest, EveryChunkingMatchesTheFdReader) {
  // Blank lines, CRLF, an oversized line, an oversized final fragment joined
  // from pieces, and an unterminated tail — all the framing edge cases.
  const std::string stream = std::string("alpha\n") + "\n" + "beta\r\n" +
                             std::string(40, 'x') + "\n" + "gamma\n" +
                             std::string(18, 'y') + std::string(18, 'z') + "\n" +
                             "tail-no-newline";
  const size_t max_bytes = 16;

  const std::vector<FramedEvent> reference = ReaderEvents(stream, max_bytes);
  ASSERT_FALSE(reference.empty());
  for (size_t chunk = 1; chunk <= 17; ++chunk) {
    EXPECT_EQ(FramerEvents(stream, chunk, max_bytes), reference)
        << "chunk size " << chunk;
  }
}

TEST(LineFramerDifferentialTest, OverflowOfFinalUnterminatedLineMatches) {
  const std::string stream = "ok\n" + std::string(100, 'q');  // oversized, no '\n'
  const size_t max_bytes = 8;
  const std::vector<FramedEvent> reference = ReaderEvents(stream, max_bytes);
  ASSERT_EQ(reference.size(), 2u);
  EXPECT_EQ(reference[0].kind, FramedEvent::kLine);
  EXPECT_EQ(reference[1].kind, FramedEvent::kOverflow);
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{64}, stream.size()}) {
    EXPECT_EQ(FramerEvents(stream, chunk, max_bytes), reference)
        << "chunk size " << chunk;
  }
}

TEST(LineFramerTest, CountsDiscardedBytesAcrossChunkedOverflow) {
  LineFramer framer(4);
  const std::string oversized(100, 'a');
  for (size_t i = 0; i < oversized.size(); ++i) framer.Feed(&oversized[i], 1);
  std::string line;
  EXPECT_EQ(framer.Next(&line), LineFramer::Event::kNone);
  framer.Feed("\n", 1);
  EXPECT_EQ(framer.Next(&line), LineFramer::Event::kOverflow);
  EXPECT_EQ(framer.discarded_bytes(), 100u);
  // The stream resynchronizes after the newline.
  framer.Feed("ok\n", 3);
  EXPECT_EQ(framer.Next(&line), LineFramer::Event::kLine);
  EXPECT_EQ(line, "ok");
}

// ---------------------------------------------------------------------------
// EINTR / short-read stress with real signals
// ---------------------------------------------------------------------------

std::atomic<int> g_signals_seen{0};

void CountSignal(int) { g_signals_seen.fetch_add(1, std::memory_order_relaxed); }

// SIGUSR1 handler WITHOUT SA_RESTART, so a signal during read() surfaces as
// EINTR — exactly the daemon's shutdown-signal setup.
void InstallNonRestartingHandler() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CountSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(sigaction(SIGUSR1, &action, nullptr), 0);
}

TEST(BoundedLineReaderSignalTest, UnrelatedSignalsNeverCorruptOrDropLines) {
  InstallNonRestartingHandler();
  g_signals_seen.store(0);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pthread_t reader_thread = pthread_self();
  constexpr int kLines = 200;

  // The writer dribbles bytes in 1..7-byte chunks and fires SIGUSR1 at the
  // reader between chunks, forcing EINTR into every read position.
  std::thread writer([&] {
    std::string payload;
    for (int i = 0; i < kLines; ++i) {
      payload += "line-" + std::to_string(i) + "-" + std::string(i % 23, 'p') + "\n";
    }
    size_t offset = 0;
    int chunk = 1;
    while (offset < payload.size()) {
      pthread_kill(reader_thread, SIGUSR1);
      const size_t n = std::min(static_cast<size_t>(chunk), payload.size() - offset);
      ssize_t written = ::write(fds[1], payload.data() + offset, n);
      if (written <= 0 && errno == EINTR) continue;
      ASSERT_GT(written, 0);
      offset += static_cast<size_t>(written);
      chunk = chunk % 7 + 1;
    }
    pthread_kill(reader_thread, SIGUSR1);
    ::close(fds[1]);
  });

  // stop stays 0: every EINTR must be retried invisibly.
  volatile int stop = 0;
  BoundedLineReader reader(fds[0], size_t{1} << 16, &stop);
  std::string line;
  int next = 0;
  while (true) {
    const BoundedLineReader::Event event = reader.Next(&line);
    if (event == BoundedLineReader::Event::kEof) break;
    ASSERT_EQ(event, BoundedLineReader::Event::kLine);
    EXPECT_EQ(line, "line-" + std::to_string(next) + "-" + std::string(next % 23, 'p'));
    ++next;
  }
  writer.join();
  ::close(fds[0]);
  EXPECT_EQ(next, kLines);
  // The interruptions actually happened — this test exercised the EINTR path.
  EXPECT_GT(g_signals_seen.load(), 0);
}

TEST(BoundedLineReaderSignalTest, StopFlagSignalSurfacesAsInterrupted) {
  InstallNonRestartingHandler();

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  volatile int stop = 0;
  const pthread_t reader_thread = pthread_self();

  // Nothing is ever written: the reader blocks in read() until the stop
  // signal lands. Keep signaling until the read is actually interrupted
  // (the first signal could in principle land before read() blocks).
  std::thread stopper([&] {
    stop = 1;
    for (int i = 0; i < 1000 && stop == 1; ++i) {
      pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  BoundedLineReader reader(fds[0], size_t{1} << 16, &stop);
  std::string line;
  EXPECT_EQ(reader.Next(&line), BoundedLineReader::Event::kInterrupted);
  stop = 2;  // tell the stopper it can quit
  stopper.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace mvrc
