#include "mvcc/serialization_graph.h"

#include <gtest/gtest.h>

namespace mvrc {
namespace {

class SerializationGraphTest : public ::testing::Test {
 protected:
  SerializationGraphTest() {
    rel_ = schema_.AddRelation("A", {"k", "v"}, {"k"});
  }
  Schema schema_;
  RelationId rel_ = -1;
};

TEST_F(SerializationGraphTest, SerialScheduleIsSerializable) {
  Transaction t0(0);
  t0.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1});
  ASSERT_TRUE(s.ok());
  SerializationGraph graph = SerializationGraph::Build(s.value());
  EXPECT_TRUE(graph.IsConflictSerializable());
  EXPECT_EQ(graph.dependencies().size(), 1u);
}

TEST_F(SerializationGraphTest, ClassicWriteSkewStyleCycle) {
  // T0 reads x then writes y; T1 reads y then writes x; interleaved so each
  // read misses the other's write. Not allowed under mvrc? Both reads happen
  // before both commits, writes on distinct tuples: no dirty write, so mvrc
  // allows it — and the SeG has a cycle of two rw-antidependencies. Exactly
  // the pattern Theorem 4.2 rules impossible... unless, as here, both
  // dependencies are counterflow-free? Check the classification instead:
  // one of the two rw edges must be counterflow (the later committer's).
  Transaction t0(0);
  t0.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  t0.Add(OpKind::kWrite, rel_, 1, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kRead, rel_, 1, AttrSet{1});
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  std::vector<OpRef> order{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok()) << s.error();
  ASSERT_TRUE(s.value().IsMvrcAllowed());
  SerializationGraph graph = SerializationGraph::Build(s.value());
  EXPECT_FALSE(graph.IsConflictSerializable());

  int cycles = 0;
  graph.EnumerateCycles([&](const DependencyCycle& cycle) {
    ++cycles;
    CycleClassification c = graph.Classify(cycle);
    EXPECT_TRUE(c.IsTypeI());
    EXPECT_TRUE(c.IsTypeII());  // guaranteed by Theorem 4.2
    return true;
  });
  EXPECT_GE(cycles, 1);
}

TEST_F(SerializationGraphTest, ClassifyAdjacentVsOrdered) {
  // Hand-build a cycle of two dependencies: one nc wr and one cf rw. The cf
  // edge's predecessor (the wr dep) has a W source, and b_i (the read) comes
  // after a_i in its transaction => ordered pair requires b_i < a_i or
  // R/PR-source; check both classification branches.
  Transaction t0(0);
  t0.Add(OpKind::kRead, rel_, 0, AttrSet{1});   // pos 0: reads x early
  t0.Add(OpKind::kRead, rel_, 1, AttrSet{1});   // pos 1: reads y late
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});  // writes x
  t1.Add(OpKind::kWrite, rel_, 1, AttrSet{1});  // writes y
  t1.FinishWithCommit();
  // T0 reads x, T1 writes both and commits, T0 reads y (sees T1), commits.
  std::vector<OpRef> order{{0, 0}, {1, 0}, {1, 1}, {1, 2}, {0, 1}, {0, 2}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok()) << s.error();
  EXPECT_TRUE(s.value().IsMvrcAllowed());
  SerializationGraph graph = SerializationGraph::Build(s.value());
  // Cycle: T0 -rw(x,cf)-> T1 -wr(y,nc)-> T0.
  EXPECT_FALSE(graph.IsConflictSerializable());
  bool saw_cycle = false;
  graph.EnumerateCycles([&](const DependencyCycle& cycle) {
    saw_cycle = true;
    CycleClassification c = graph.Classify(cycle);
    EXPECT_TRUE(c.has_counterflow);
    EXPECT_TRUE(c.has_non_counterflow);
    EXPECT_FALSE(c.has_adjacent_counterflow_pair);
    // b_i = R0[x] at pos 0, a_i = R0[y] at pos 1: b_i <_T a_i -> ordered.
    EXPECT_TRUE(c.has_ordered_counterflow_pair);
    EXPECT_TRUE(c.IsTypeII());
    return true;
  });
  EXPECT_TRUE(saw_cycle);
}

TEST_F(SerializationGraphTest, EnumerateCyclesExpandsParallelDependencies) {
  // Two parallel dependencies on each direction between T0 and T1 give
  // 2 x 2 = 4 dependency-level cycles over one node-level cycle.
  Transaction t0(0);
  t0.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  t0.Add(OpKind::kRead, rel_, 1, AttrSet{1});
  t0.Add(OpKind::kRead, rel_, 2, AttrSet{1});
  t0.Add(OpKind::kRead, rel_, 3, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.Add(OpKind::kWrite, rel_, 1, AttrSet{1});
  t1.Add(OpKind::kWrite, rel_, 2, AttrSet{1});
  t1.Add(OpKind::kWrite, rel_, 3, AttrSet{1});
  t1.FinishWithCommit();
  // T0 reads 0,1 early (missing T1's writes: rw), T1 commits, T0 reads 2,3
  // (seeing T1: wr).
  std::vector<OpRef> order{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {1, 3},
                           {1, 4}, {0, 2}, {0, 3}, {0, 4}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok()) << s.error();
  SerializationGraph graph = SerializationGraph::Build(s.value());
  int cycles = graph.EnumerateCycles([](const DependencyCycle&) { return true; });
  EXPECT_EQ(cycles, 4);
  EXPECT_TRUE(graph.AllCyclesTypeII());
}

TEST_F(SerializationGraphTest, MaxCyclesCapRespected) {
  Transaction t0(0);
  t0.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  t0.Add(OpKind::kRead, rel_, 1, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.Add(OpKind::kWrite, rel_, 1, AttrSet{1});
  t1.FinishWithCommit();
  std::vector<OpRef> order{{0, 0}, {1, 0}, {1, 1}, {1, 2}, {0, 1}, {0, 2}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok());
  SerializationGraph graph = SerializationGraph::Build(s.value());
  int cycles = graph.EnumerateCycles([](const DependencyCycle&) { return true; },
                                     /*max_cycles=*/1);
  EXPECT_EQ(cycles, 1);
}

}  // namespace
}  // namespace mvrc
