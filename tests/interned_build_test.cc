// Differential tests of the interned summary-graph builder against the
// legacy per-pair builder, plus unit tests for the statement-shape interner,
// the shape-pair verdict matrix and the CSR edge storage.
//
// The contract under test: BuildSummaryGraph (statement-shape interning +
// verdict-matrix bucket joins + LTP-shape cell-template replay) produces an
// edge sequence bit-identical to BuildSummaryGraphLegacy (ncDepTable /
// cDepTable + ncDepConds / cDepConds per statement pair) for every
// workload, granularity and foreign-key setting — and the parallel build
// matches the serial one.

#include <atomic>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "summary/build_summary.h"
#include "summary/statement_interner.h"
#include "summary/summary_graph.h"
#include "util/thread_pool.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

const AnalysisSettings kAllSettings[] = {
    AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
    AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()};

// --- Shared helpers.

void ExpectSameGraph(const SummaryGraph& interned, const SummaryGraph& legacy,
                     const std::string& context) {
  ASSERT_EQ(interned.num_programs(), legacy.num_programs()) << context;
  ASSERT_EQ(interned.num_edges(), legacy.num_edges()) << context;
  EXPECT_EQ(interned.num_counterflow_edges(), legacy.num_counterflow_edges()) << context;
  ASSERT_TRUE(interned.edges() == legacy.edges()) << context;
  for (int p = 0; p < interned.num_programs(); ++p) {
    const auto io = interned.OutEdges(p), lo = legacy.OutEdges(p);
    const auto ii = interned.InEdges(p), li = legacy.InEdges(p);
    ASSERT_TRUE(std::equal(io.begin(), io.end(), lo.begin(), lo.end()))
        << context << " OutEdges(" << p << ")";
    ASSERT_TRUE(std::equal(ii.begin(), ii.end(), li.begin(), li.end()))
        << context << " InEdges(" << p << ")";
  }
}

void ExpectBuildersAgree(const std::vector<Btp>& programs, const std::string& context) {
  for (const AnalysisSettings& settings : kAllSettings) {
    std::vector<Ltp> ltps = UnfoldAtMost2(programs);
    SummaryGraph interned = BuildSummaryGraph(ltps, settings);
    SummaryGraph legacy = BuildSummaryGraphLegacy(std::move(ltps), settings);
    ExpectSameGraph(interned, legacy, context + " / " + settings.name());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- Randomized workloads, mirroring the generator idiom of
// tests/masked_detector_test.cc: a few relations, all seven statement
// types, loops/branches so several programs unfold to multiple LTPs, and
// foreign keys so the cDepConds suppression rule is exercised.

class RandomWorkloadGen {
 public:
  explicit RandomWorkloadGen(uint64_t seed) : rng_(seed) {}

  std::vector<Btp> Generate(Schema& schema) {
    const int num_relations = Pick(2, 3);
    for (int r = 0; r < num_relations; ++r) {
      std::vector<std::string> attrs;
      const int num_attrs = Pick(2, 4);
      for (int a = 0; a < num_attrs; ++a) {
        attrs.push_back("a" + std::to_string(r) + std::to_string(a));
      }
      schema.AddRelation("R" + std::to_string(r), attrs, {attrs[0]});
    }
    for (int r = 1; r < num_relations; ++r) {
      if (Chance(0.5)) schema.AddForeignKey("f" + std::to_string(r), r, {}, 0);
    }
    std::vector<Btp> programs;
    const int num_programs = Pick(4, 6);
    for (int p = 0; p < num_programs; ++p) programs.push_back(GenerateProgram(schema, p));
    return programs;
  }

 private:
  int Pick(int lo, int hi) { return lo + static_cast<int>(rng_() % (hi - lo + 1)); }
  bool Chance(double p) { return (rng_() % 1000) < p * 1000; }

  AttrSet RandomSubset(const Schema& schema, RelationId rel, bool non_empty) {
    AttrSet set;
    const int n = schema.relation(rel).num_attrs();
    for (int a = 0; a < n; ++a) {
      if (Chance(0.45)) set.Insert(a);
    }
    if (non_empty && set.empty()) set.Insert(static_cast<AttrId>(rng_() % n));
    return set;
  }

  Statement RandomStatement(const Schema& schema, const std::string& label) {
    RelationId rel = static_cast<RelationId>(rng_() % schema.num_relations());
    switch (rng_() % 7) {
      case 0:
        return Statement::Insert(label, schema, rel);
      case 1:
        return Statement::KeySelect(label, schema, rel, RandomSubset(schema, rel, false));
      case 2:
        return Statement::PredSelect(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false));
      case 3:
        return Statement::KeyUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                    RandomSubset(schema, rel, true));
      case 4:
        return Statement::PredUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, true));
      case 5:
        return Statement::KeyDelete(label, schema, rel);
      default:
        return Statement::PredDelete(label, schema, rel, RandomSubset(schema, rel, false));
    }
  }

  Btp GenerateProgram(const Schema& schema, int index) {
    Btp program("P" + std::to_string(index));
    const int num_statements = Pick(2, 5);
    std::vector<StmtId> ids;
    for (int q = 0; q < num_statements; ++q) {
      ids.push_back(program.AddStatement(RandomStatement(schema, "q" + std::to_string(q + 1))));
    }
    std::vector<Btp::NodeId> nodes;
    for (StmtId id : ids) nodes.push_back(program.Stmt(id));
    if (num_statements >= 2 && Chance(0.5)) {
      const int from = Pick(0, num_statements - 2);
      const int to = Pick(from + 1, num_statements - 1);
      std::vector<Btp::NodeId> inner(nodes.begin() + from, nodes.begin() + to + 1);
      Btp::NodeId wrapped;
      switch (rng_() % 3) {
        case 0:
          wrapped = program.Loop(program.Seq(inner));
          break;
        case 1:
          wrapped = program.Optional(program.Seq(inner));
          break;
        default:
          wrapped = program.Choice(program.Seq(inner), program.Stmt(ids[from]));
          break;
      }
      std::vector<Btp::NodeId> rebuilt(nodes.begin(), nodes.begin() + from);
      rebuilt.push_back(wrapped);
      rebuilt.insert(rebuilt.end(), nodes.begin() + to + 1, nodes.end());
      nodes = std::move(rebuilt);
    }
    program.Finish(program.Seq(nodes));
    // Foreign-key annotations between key-based parents and arbitrary
    // children, so cDepConds' suppression rule fires on some pairs.
    for (int fk = 0; fk < schema.num_foreign_keys(); ++fk) {
      if (!Chance(0.4)) continue;
      const RelationId child_rel = schema.foreign_key(fk).dom;
      const RelationId parent_rel = schema.foreign_key(fk).range;
      for (StmtId parent : ids) {
        if (program.statement(parent).rel() != parent_rel ||
            !IsKeyBased(program.statement(parent).type())) {
          continue;
        }
        for (StmtId child : ids) {
          if (program.statement(child).rel() != child_rel || child == parent) continue;
          program.AddFkConstraint(schema, parent, fk, child);
          break;
        }
        break;
      }
    }
    return program;
  }

  std::mt19937_64 rng_;
};

class InternedBuildRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(InternedBuildRandomTest, MatchesLegacyBuilderOnEverySetting) {
  RandomWorkloadGen gen(GetParam() * 9001 + 23);
  Schema schema;
  std::vector<Btp> programs = gen.Generate(schema);
  ExpectBuildersAgree(programs, "seed=" + std::to_string(GetParam()));
}

TEST_P(InternedBuildRandomTest, ParallelBuildMatchesSerial) {
  RandomWorkloadGen gen(GetParam() * 31337 + 5);
  Schema schema;
  std::vector<Btp> programs = gen.Generate(schema);
  std::vector<Ltp> ltps = UnfoldAtMost2(programs);
  for (const AnalysisSettings& settings :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDepFk()}) {
    SummaryGraph serial = BuildSummaryGraph(ltps, settings);
    for (int threads : {2, 4}) {
      ThreadPool pool(threads);
      SummaryGraph parallel = BuildSummaryGraph(ltps, settings, &pool);
      ExpectSameGraph(parallel, serial,
                      "seed=" + std::to_string(GetParam()) + " threads=" +
                          std::to_string(threads) + " / " + settings.name());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternedBuildRandomTest, ::testing::Range(0, 20));

// --- Builtin workloads, including the FK-heavy paper benchmarks.

TEST(InternedBuildBuiltinTest, MatchesLegacyOnPaperWorkloads) {
  for (const Workload& workload :
       {MakeSmallBank(), MakeAuction(), MakeAuctionN(4), MakeTpcc()}) {
    ExpectBuildersAgree(workload.programs, workload.name);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Replicated shared-schema workloads drive the LTP-shape template-replay
// path (few distinct LTP shapes, many replicas) — the serving case the
// throughput bench gates.
TEST(InternedBuildBuiltinTest, MatchesLegacyOnReplicatedWorkload) {
  Workload workload = MakeAuction();
  std::vector<Ltp> base = UnfoldAtMost2(workload.programs);
  std::vector<Ltp> ltps;
  for (int rep = 0; rep < 24; ++rep) {
    for (const Ltp& ltp : base) {
      const std::string suffix = "#" + std::to_string(rep);
      ltps.emplace_back(ltp.name() + suffix, ltp.source_program() + suffix,
                        ltp.occurrences(), ltp.constraints());
    }
  }
  for (const AnalysisSettings& settings : kAllSettings) {
    SummaryGraph interned = BuildSummaryGraph(ltps, settings);
    SummaryGraph legacy = BuildSummaryGraphLegacy(ltps, settings);
    ExpectSameGraph(interned, legacy, std::string("replicated auction / ") + settings.name());
    ThreadPool pool(3);
    SummaryGraph parallel = BuildSummaryGraph(ltps, settings, &pool);
    ExpectSameGraph(parallel, interned,
                    std::string("replicated auction parallel / ") + settings.name());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- StatementInterner unit tests.

TEST(StatementInternerTest, SharesShapesAcrossProgramsAndLabels) {
  Schema schema;
  RelationId rel = schema.AddRelation("R", {"a", "b"}, {"a"});
  StatementInterner interner;
  const ShapeId s1 = interner.Intern(Statement::KeySelect("q1", schema, rel, AttrSet{0}));
  const ShapeId s2 = interner.Intern(Statement::KeySelect("q7", schema, rel, AttrSet{0}));
  EXPECT_EQ(s1, s2);  // label does not participate in the shape
  const ShapeId s3 = interner.Intern(Statement::KeySelect("q1", schema, rel, AttrSet{1}));
  EXPECT_NE(s1, s3);  // attribute sets do
  const ShapeId s4 = interner.Intern(Statement::PredSelect("q1", schema, rel, AttrSet{0}, AttrSet{0}));
  EXPECT_NE(s1, s4);  // statement type does
  EXPECT_EQ(interner.num_shapes(), 3);
  EXPECT_EQ(interner.rel(s1), rel);
  EXPECT_EQ(interner.shapes_of_rel(rel).size(), 3u);
  EXPECT_EQ(interner.shapes_of_rel(rel)[interner.local_id(s3)], s3);
}

TEST(StatementInternerTest, RelationSeparatesShapes) {
  Schema schema;
  RelationId r0 = schema.AddRelation("R0", {"a", "b"}, {"a"});
  RelationId r1 = schema.AddRelation("R1", {"a", "b"}, {"a"});
  StatementInterner interner;
  const ShapeId s0 = interner.Intern(Statement::KeySelect("q1", schema, r0, AttrSet{0}));
  const ShapeId s1 = interner.Intern(Statement::KeySelect("q2", schema, r1, AttrSet{0}));
  EXPECT_NE(s0, s1);
  // Each is the first (local id 0) shape of its own relation.
  EXPECT_EQ(interner.local_id(s0), 0);
  EXPECT_EQ(interner.local_id(s1), 0);
  EXPECT_EQ(interner.num_relations(), 2);
}

TEST(StatementInternerTest, UndefinedAndEmptySetsAreDistinctShapes) {
  // ⊥ and the defined-but-empty set must not collide: they differ in the
  // `defined` bits even when every mask is zero.
  StatementShape undefined_read;
  StatementShape empty_read;
  empty_read.defined = 1;
  EXPECT_FALSE(undefined_read == empty_read);
  EXPECT_NE(HashShape(undefined_read), HashShape(empty_read));
}

TEST(StatementInternerTest, SingleStatementCellsMatchLegacyPairEvaluator) {
  // Property check of the verdict matrix: for random same-relation
  // statement pairs wrapped in 1-statement LTPs, the interned cell emission
  // must equal SummaryEdgesBetween under every setting (this pins the
  // matrix's 3-state counterflow classification to AllowsCounterflow).
  std::mt19937_64 rng(12345);
  Schema schema;
  RelationId rel = schema.AddRelation("R", {"a", "b", "c"}, {"a"});
  auto random_stmt = [&](const std::string& label) {
    auto subset = [&](bool non_empty) {
      AttrSet set;
      for (int a = 0; a < 3; ++a) {
        if (rng() % 2) set.Insert(a);
      }
      if (non_empty && set.empty()) set.Insert(static_cast<AttrId>(rng() % 3));
      return set;
    };
    switch (rng() % 7) {
      case 0:
        return Statement::Insert(label, schema, rel);
      case 1:
        return Statement::KeySelect(label, schema, rel, subset(false));
      case 2:
        return Statement::PredSelect(label, schema, rel, subset(false), subset(false));
      case 3:
        return Statement::KeyUpdate(label, schema, rel, subset(false), subset(true));
      case 4:
        return Statement::PredUpdate(label, schema, rel, subset(false), subset(false),
                                     subset(true));
      case 5:
        return Statement::KeyDelete(label, schema, rel);
      default:
        return Statement::PredDelete(label, schema, rel, subset(false));
    }
  };
  for (int trial = 0; trial < 200; ++trial) {
    Ltp a("A", "A", {{random_stmt("q1"), 0, {}}}, {});
    Ltp b("B", "B", {{random_stmt("q2"), 0, {}}}, {});
    for (const AnalysisSettings& settings : kAllSettings) {
      StatementInterner interner;
      InternedLtp ia = InternLtp(interner, a);
      InternedLtp ib = InternLtp(interner, b);
      ShapeVerdictMatrix matrix;
      matrix.Sync(interner, settings);
      std::vector<SummaryEdge> interned_edges;
      AppendInternedCellEdges(ia, 0, ib, 1, matrix, interned_edges);
      std::vector<SummaryEdge> legacy_edges = SummaryEdgesBetween(a, 0, b, 1, settings);
      ASSERT_TRUE(interned_edges == legacy_edges)
          << "trial=" << trial << " / " << settings.name();
    }
  }
}

TEST(StatementInternerTest, LtpShapeHashConsing) {
  Schema schema;
  RelationId rel = schema.AddRelation("R", {"a", "b"}, {"a"});
  Statement q1 = Statement::KeyUpdate("q1", schema, rel, AttrSet{0}, AttrSet{0});
  Statement q2 = Statement::KeySelect("q2", schema, rel, AttrSet{1});
  StatementInterner interner;
  InternedLtp p1 = InternLtp(interner, Ltp("P1", "P1", {{q1, 0, {}}, {q2, 1, {}}}, {}));
  InternedLtp p2 = InternLtp(interner, Ltp("P2", "P2", {{q1, 0, {}}, {q2, 1, {}}}, {}));
  InternedLtp p3 = InternLtp(interner, Ltp("P3", "P3", {{q2, 0, {}}, {q1, 1, {}}}, {}));
  EXPECT_TRUE(SameLtpShape(p1, p2));
  EXPECT_EQ(HashLtpShape(p1), HashLtpShape(p2));
  EXPECT_FALSE(SameLtpShape(p1, p3));  // statement order matters
}

// --- CSR edge storage.

TEST(SummaryGraphCsrTest, CellSlicesPartitionTheArena) {
  Workload workload = MakeAuctionN(2);
  SummaryGraph graph = BuildSummaryGraph(workload.programs, AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(graph.cells_contiguous());
  size_t covered = 0;
  for (int from = 0; from < graph.num_programs(); ++from) {
    for (int to = 0; to < graph.num_programs(); ++to) {
      const auto cell = graph.CellEdges(from, to);
      for (const SummaryEdge& edge : cell) {
        EXPECT_EQ(edge.from_program, from);
        EXPECT_EQ(edge.to_program, to);
        // Slices are contiguous views into the arena, in arena order.
        EXPECT_EQ(&edge, graph.edges().data() + (&edge - graph.edges().data()));
      }
      covered += cell.size();
    }
  }
  EXPECT_EQ(covered, static_cast<size_t>(graph.num_edges()));
}

TEST(SummaryGraphCsrTest, AdjacencyMatchesArenaRecount) {
  Workload workload = MakeTpcc();
  SummaryGraph graph = BuildSummaryGraph(workload.programs, AnalysisSettings::AttrDep());
  std::vector<std::vector<int32_t>> out(graph.num_programs()), in(graph.num_programs());
  for (int e = 0; e < graph.num_edges(); ++e) {
    out[graph.edges()[e].from_program].push_back(e);
    in[graph.edges()[e].to_program].push_back(e);
  }
  for (int p = 0; p < graph.num_programs(); ++p) {
    const auto o = graph.OutEdges(p), i = graph.InEdges(p);
    EXPECT_TRUE(std::equal(o.begin(), o.end(), out[p].begin(), out[p].end())) << p;
    EXPECT_TRUE(std::equal(i.begin(), i.end(), in[p].begin(), in[p].end())) << p;
  }
}

TEST(SummaryGraphCsrTest, AddEdgeAfterReadsRebuildsIndexAndTracksCounterflow) {
  Workload workload = MakeAuction();
  std::vector<Ltp> ltps = UnfoldAtMost2(workload.programs);
  SummaryGraph graph(ltps);
  EXPECT_EQ(graph.num_counterflow_edges(), 0);
  graph.AddEdge({0, 0, /*counterflow=*/true, 0, 1});
  EXPECT_EQ(graph.OutEdges(0).size(), 1u);  // builds the index
  graph.AddEdge({1, 0, /*counterflow=*/false, 0, 0});  // invalidates it
  EXPECT_EQ(graph.num_counterflow_edges(), 1);
  EXPECT_EQ(graph.num_non_counterflow_edges(), 1);
  ASSERT_EQ(graph.OutEdges(1).size(), 1u);
  EXPECT_EQ(graph.OutEdges(1)[0], 1);
  EXPECT_EQ(graph.InEdges(0).size(), 1u);
  EXPECT_TRUE(graph.cells_contiguous());  // (0,1) then (1,0) is sorted
  graph.AddEdge({0, 0, /*counterflow=*/false, 0, 0});  // out of order
  EXPECT_FALSE(graph.cells_contiguous());
  EXPECT_EQ(graph.OutEdges(0).size(), 2u);
}

TEST(SummaryGraphCsrTest, DistinctStatementEdgeDedupMatchesSetBaseline) {
  for (const Workload& workload : {MakeAuctionN(3), MakeTpcc(), MakeSmallBank()}) {
    SummaryGraph graph =
        BuildSummaryGraph(workload.programs, AnalysisSettings::AttrDepFk());
    // The pre-interning implementation: a std::set of string tuples.
    std::set<std::tuple<std::string, int, bool, int, std::string>> distinct;
    for (const SummaryEdge& edge : graph.edges()) {
      distinct.insert({graph.program(edge.from_program).source_program(),
                       graph.program(edge.from_program).occurrence(edge.from_occ).source_stmt,
                       edge.counterflow,
                       graph.program(edge.to_program).occurrence(edge.to_occ).source_stmt,
                       graph.program(edge.to_program).source_program()});
    }
    EXPECT_EQ(graph.num_distinct_statement_edges(), static_cast<int>(distinct.size()))
        << workload.name;
  }
}

// --- Chunked ParallelFor.

TEST(ParallelForChunkedTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t count : {0, 1, 5, 64, 1000}) {
    for (int64_t grain : {0, 1, 3, 16, 2000}) {
      std::vector<std::atomic<int>> hits(count);
      pool.ParallelForChunked(count, grain, [&hits](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (int64_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " grain=" << grain;
      }
    }
  }
}

TEST(ParallelForChunkedTest, WorkerSlotsAreExclusivePerChunk) {
  ThreadPool pool(3);
  constexpr int kCount = 500;
  std::vector<int> slot_of(kCount, -1);
  std::vector<std::atomic<int>> in_slot(3);
  std::atomic<bool> overlapped{false};
  pool.ParallelForWorkersChunked(kCount, 7, [&](int worker, int64_t begin, int64_t end) {
    if (in_slot[worker].fetch_add(1) != 0) overlapped = true;
    for (int64_t i = begin; i < end; ++i) slot_of[i] = worker;
    in_slot[worker].fetch_sub(1);
  });
  EXPECT_FALSE(overlapped.load());
  for (int i = 0; i < kCount; ++i) {
    EXPECT_GE(slot_of[i], 0);
    EXPECT_LT(slot_of[i], 3);
  }
}

}  // namespace
}  // namespace mvrc
