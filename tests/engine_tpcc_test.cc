// Concrete TPC-C on the MVCC engine: functional checks of the five
// transactions plus live validation of the paper's verdicts — the
// {OrderStatus, Payment, StockLevel} subset stays serializable under any
// interleaving, while NewOrder racing OrderStatus exhibits real phantom
// anomalies, exactly as the summary-graph analysis predicts.

#include "engine/tpcc_programs.h"

#include <gtest/gtest.h>

#include "engine/random_tester.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

constexpr RelationId kDistrict = 1, kCustomer = 2, kNewOrder = 4, kOrders = 5,
                     kOrderLine = 6, kStock = 8;

Database MakeDb() {
  Database db(MakeTpcc().schema);
  SeedTpcc(&db, /*warehouses=*/1, /*districts=*/2, /*customers=*/2, /*items=*/2);
  return db;
}

// Runs a program to completion on a fresh transaction; aborts the test on a
// blocked step (callers arrange no contention).
void RunToCommit(Database* db, TraceRecorder* recorder, const ConcreteProgram& program) {
  EngineTxn txn(db, recorder);
  Locals locals;
  for (const ConcreteStep& step : program.steps) {
    ASSERT_EQ(step(txn, locals), StepResult::kOk) << program.name;
  }
  txn.Commit();
}

TEST(TpccEngineTest, NewOrderCreatesOrderRows) {
  Database db = MakeDb();
  TraceRecorder recorder;
  RunToCommit(&db, &recorder,
              TpccNewOrder(0, 0, 0, {{/*item*/ 0, /*supply*/ 0, /*qty*/ 3},
                                     {/*item*/ 1, /*supply*/ 0, /*qty*/ 1}}));
  // d_next_o_id advanced from 100 to 101; the order got id 101.
  EXPECT_EQ(db.LastCommitted(kDistrict, 0)->values[10], 101);
  EXPECT_NE(db.LastCommitted(kOrders, 101 * 10000), nullptr);
  EXPECT_NE(db.LastCommitted(kNewOrder, 101 * 10000), nullptr);
  EXPECT_NE(db.LastCommitted(kOrderLine, 101 * 10000 * 100 + 0), nullptr);
  EXPECT_NE(db.LastCommitted(kOrderLine, 101 * 10000 * 100 + 1), nullptr);
  // Stock quantity of item 0 dropped by 3.
  EXPECT_EQ(db.LastCommitted(kStock, 0)->values[2], 97);
  // The trace is a valid mvrc schedule.
  Result<Schedule> schedule = recorder.ToSchedule();
  ASSERT_TRUE(schedule.ok()) << schedule.error();
  EXPECT_TRUE(schedule.value().IsMvrcAllowed());
}

TEST(TpccEngineTest, PaymentUpdatesBalancesAndHistory) {
  Database db = MakeDb();
  TraceRecorder recorder;
  RunToCommit(&db, &recorder,
              TpccPayment(0, 0, 1, /*amount=*/50, /*select_by_name=*/true,
                          /*update_data=*/true));
  EXPECT_EQ(db.LastCommitted(kCustomer, 1)->values[16], 450);  // c_balance
  EXPECT_EQ(db.LastCommitted(kCustomer, 1)->values[18], 1);    // c_payment_cnt
  EXPECT_EQ(db.LastCommitted(kDistrict, 0)->values[9], 50);    // d_ytd
  // Payment writes Customer twice (q23 and q25); the trace merges the
  // writes per the one-write-per-tuple convention and stays valid.
  Result<Schedule> schedule = recorder.ToSchedule();
  ASSERT_TRUE(schedule.ok()) << schedule.error();
  EXPECT_TRUE(schedule.value().txn(0).Validate().ok());
}

TEST(TpccEngineTest, DeliveryConsumesOldestOrder) {
  Database db = MakeDb();
  TraceRecorder recorder;
  RunToCommit(&db, &recorder, TpccNewOrder(0, 0, 0, {{0, 0, 2}}));
  RunToCommit(&db, &recorder, TpccNewOrder(0, 0, 1, {{1, 0, 1}}));
  RunToCommit(&db, &recorder, TpccDelivery(0, 0, /*carrier=*/7));
  // The oldest order (101) is delivered: new-order row gone, carrier set,
  // customer 0 credited with the line amount (2 * 10 = 20).
  EXPECT_TRUE(db.LastCommitted(kNewOrder, 101 * 10000)->deleted);
  EXPECT_EQ(db.LastCommitted(kOrders, 101 * 10000)->values[5], 7);
  EXPECT_EQ(db.LastCommitted(kCustomer, 0)->values[16], 520);
  // Order 102 remains open.
  EXPECT_FALSE(db.LastCommitted(kNewOrder, 102 * 10000)->deleted);

  // Delivery on an empty district is a clean no-op.
  TraceRecorder quiet;
  RunToCommit(&db, &quiet, TpccDelivery(0, 1, 7));
}

TEST(TpccEngineTest, OrderStatusAndStockLevelRun) {
  Database db = MakeDb();
  TraceRecorder recorder;
  RunToCommit(&db, &recorder, TpccNewOrder(0, 0, 0, {{0, 0, 1}}));
  RunToCommit(&db, &recorder, TpccOrderStatus(0, 0, 0, /*select_by_name=*/false));
  RunToCommit(&db, &recorder, TpccOrderStatus(0, 0, 0, /*select_by_name=*/true));
  RunToCommit(&db, &recorder, TpccStockLevel(0, 0, /*threshold=*/200));
  Result<Schedule> schedule = recorder.ToSchedule();
  ASSERT_TRUE(schedule.ok()) << schedule.error();
  EXPECT_EQ(schedule.value().num_txns(), 4);
}

TEST(TpccEngineTest, RobustSubsetOsPaySlStaysSerializable) {
  // Figure 6 (attr dep + FK): {OS, Pay, SL} is robust — no interleaving may
  // be non-serializable, including the by-name and bad-credit Payment
  // variants (the unfoldings Payment1..4 of the analysis).
  RandomTestOptions options;
  options.rounds = 300;
  RandomTestReport report = RunRandomRounds(
      &MakeDb,
      [] {
        return std::vector<ConcreteProgram>{
            TpccPayment(0, 0, 0, 10, /*by_name=*/true, /*update_data=*/true),
            TpccPayment(0, 0, 0, 20, /*by_name=*/false, /*update_data=*/false),
            TpccOrderStatus(0, 0, 0, /*by_name=*/true),
            TpccOrderStatus(0, 0, 0, /*by_name=*/false),
            TpccStockLevel(0, 0, 200),
        };
      },
      options);
  EXPECT_EQ(report.rounds_run, 300);
  EXPECT_EQ(report.non_serializable_rounds, 0)
      << *report.first_anomaly;
}

TEST(TpccEngineTest, NewOrderOrderStatusPhantomAnomaly) {
  // {NO, OS} is rejected by the detector; live, the phantom shows up when a
  // NewOrder commits between OrderStatus's scan of Orders and its scan of
  // Order_Line: the first scan misses the order (rw to the insert,
  // counterflow) while the second sees its lines (wr from the insert).
  RandomTestOptions options;
  options.rounds = 600;
  RandomTestReport report = RunRandomRounds(
      &MakeDb,
      [] {
        return std::vector<ConcreteProgram>{
            TpccNewOrder(0, 0, 0, {{0, 0, 1}}),
            TpccOrderStatus(0, 0, 0, /*by_name=*/false),
        };
      },
      options);
  EXPECT_GT(report.non_serializable_rounds, 0);
}

TEST(TpccEngineTest, NewOrderDeliveryMixAnomaly) {
  // {NO, Del} is rejected as well: Delivery's New_Order scan and its
  // Order_Line processing can bracket a NewOrder commit.
  RandomTestOptions options;
  options.rounds = 800;
  RandomTestReport report = RunRandomRounds(
      [] {
        Database db = MakeDb();
        // Pre-seed one open order so Delivery has work even when it runs
        // before the concurrent NewOrder.
        TraceRecorder setup;
        EngineTxn txn(&db, &setup);
        Locals locals;
        for (const ConcreteStep& step : TpccNewOrder(0, 0, 1, {{1, 0, 1}}).steps) {
          step(txn, locals);
        }
        txn.Commit();
        return db;
      },
      [] {
        return std::vector<ConcreteProgram>{
            TpccNewOrder(0, 0, 0, {{0, 0, 1}}),
            TpccDelivery(0, 0, /*carrier=*/3),
        };
      },
      options);
  EXPECT_EQ(report.rounds_run, 800);
  EXPECT_GT(report.non_serializable_rounds, 0);
}

}  // namespace
}  // namespace mvrc
