#include "mvcc/enumerate.h"

#include <gtest/gtest.h>

#include "mvcc/serialization_graph.h"

namespace mvrc {
namespace {

class EnumerateTest : public ::testing::Test {
 protected:
  EnumerateTest() { rel_ = schema_.AddRelation("A", {"k", "v"}, {"k"}); }

  Transaction Reader(int id) {
    Transaction txn(id);
    txn.Add(OpKind::kRead, rel_, 0, AttrSet{1});
    txn.FinishWithCommit();
    return txn;
  }

  Transaction Writer(int id) {
    Transaction txn(id);
    txn.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
    txn.FinishWithCommit();
    return txn;
  }

  Schema schema_;
  RelationId rel_ = -1;
};

TEST_F(EnumerateTest, CountsAllInterleavings) {
  // Two transactions with 2 units each: C(4,2) = 6 interleavings, all valid
  // (reads never break validation).
  long count = ForEachSchedule({Reader(0), Reader(1)},
                               [](const Schedule&) { return true; });
  EXPECT_EQ(count, 6);
}

TEST_F(EnumerateTest, ChunksReduceTheSpace) {
  // A chunked R;W counts as one unit: (R W) C vs R C -> units 2 and 2 -> 6;
  // without the chunk it would be multinomial(5;3,2) = 10.
  Transaction chunked(0);
  int r = chunked.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  int w = chunked.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  chunked.AddChunk(r, w);
  chunked.FinishWithCommit();
  long count =
      ForEachSchedule({chunked, Reader(1)}, [](const Schedule&) { return true; });
  EXPECT_EQ(count, 6);
}

TEST_F(EnumerateTest, MvrcFilterDropsDirtyWrites) {
  long all = ForEachSchedule({Writer(0), Writer(1)},
                             [](const Schedule&) { return true; });
  long mvrc = ForEachMvrcSchedule({Writer(0), Writer(1)},
                                  [](const Schedule&) { return true; });
  EXPECT_GT(all, mvrc);
  // mvrc-allowed: the two writes must be commit-separated; W0 C0 W1 C1 and
  // W1 C1 W0 C0 only.
  EXPECT_EQ(mvrc, 2);
}

TEST_F(EnumerateTest, EarlyStop) {
  long count = ForEachSchedule({Reader(0), Reader(1)},
                               [](const Schedule&) { return false; });
  EXPECT_EQ(count, 1);
}

TEST_F(EnumerateTest, SerializationGraphDot) {
  Transaction t0 = Writer(0);
  Transaction t1 = Reader(1);
  Result<Schedule> schedule = Schedule::Serial({t0, t1});
  ASSERT_TRUE(schedule.ok());
  SerializationGraph graph = SerializationGraph::Build(schedule.value());
  std::string dot = graph.ToDot(schema_, "seg");
  EXPECT_NE(dot.find("\"T0\" -> \"T1\""), std::string::npos);
  EXPECT_NE(dot.find("wr:"), std::string::npos);
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);  // no counterflow
}

}  // namespace
}  // namespace mvrc
