// Randomized digraph tests: reachability, cycle detection and SCCs checked
// against brute-force reference implementations on random graphs.

#include <functional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace mvrc {
namespace {

struct RandomGraph {
  Digraph graph;
  std::vector<std::vector<bool>> adj;
};

RandomGraph MakeRandom(uint64_t seed) {
  std::mt19937_64 rng(seed);
  int n = 2 + static_cast<int>(rng() % 9);  // 2..10 nodes
  RandomGraph out{Digraph(n), std::vector<std::vector<bool>>(n, std::vector<bool>(n))};
  double density = 0.05 + (rng() % 30) / 100.0;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if ((rng() % 1000) < density * 1000) {
        out.graph.AddEdge(u, v);
        out.adj[u][v] = true;
      }
    }
  }
  return out;
}

// Floyd–Warshall reference closure (reflexive).
std::vector<std::vector<bool>> ReferenceClosure(const std::vector<std::vector<bool>>& adj) {
  int n = static_cast<int>(adj.size());
  std::vector<std::vector<bool>> reach = adj;
  for (int v = 0; v < n; ++v) reach[v][v] = true;
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (reach[i][k] && reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

class DigraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DigraphPropertyTest, ReachabilityMatchesFloydWarshall) {
  RandomGraph random = MakeRandom(GetParam() * 2654435761u + 3);
  Digraph::Reachability reach = random.graph.ComputeReachability();
  std::vector<std::vector<bool>> reference = ReferenceClosure(random.adj);
  for (int u = 0; u < random.graph.num_nodes(); ++u) {
    for (int v = 0; v < random.graph.num_nodes(); ++v) {
      EXPECT_EQ(reach.At(u, v), reference[u][v]) << u << "->" << v;
    }
  }
}

TEST_P(DigraphPropertyTest, HasCycleMatchesClosureDiagonalThroughEdges) {
  RandomGraph random = MakeRandom(GetParam() * 40503 + 11);
  // A cycle exists iff some edge (u, v) has v ~> u.
  std::vector<std::vector<bool>> reference = ReferenceClosure(random.adj);
  bool expect_cycle = false;
  for (int u = 0; u < random.graph.num_nodes(); ++u) {
    for (int v = 0; v < random.graph.num_nodes(); ++v) {
      if (random.adj[u][v] && reference[v][u]) expect_cycle = true;
    }
  }
  EXPECT_EQ(random.graph.HasCycle(), expect_cycle);
}

TEST_P(DigraphPropertyTest, SccMatchesMutualReachability) {
  RandomGraph random = MakeRandom(GetParam() * 69069 + 7);
  std::vector<int> component = random.graph.StronglyConnectedComponents();
  std::vector<std::vector<bool>> reference = ReferenceClosure(random.adj);
  for (int u = 0; u < random.graph.num_nodes(); ++u) {
    for (int v = 0; v < random.graph.num_nodes(); ++v) {
      bool mutual = reference[u][v] && reference[v][u];
      EXPECT_EQ(component[u] == component[v], mutual) << u << " vs " << v;
    }
  }
}

TEST_P(DigraphPropertyTest, ShortestPathIsValidAndMinimal) {
  RandomGraph random = MakeRandom(GetParam() * 997 + 23);
  const int n = random.graph.num_nodes();
  // Reference BFS distances.
  for (int s = 0; s < n; ++s) {
    std::vector<int> dist(n, -1);
    std::vector<int> queue{s};
    dist[s] = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
      int u = queue[head];
      for (int v = 0; v < n; ++v) {
        if (random.adj[u][v] && dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    for (int t = 0; t < n; ++t) {
      std::vector<int> path = random.graph.ShortestPath(s, t);
      if (dist[t] < 0) {
        EXPECT_TRUE(path.empty()) << s << "->" << t;
        continue;
      }
      ASSERT_FALSE(path.empty()) << s << "->" << t;
      EXPECT_EQ(static_cast<int>(path.size()) - 1, dist[t]);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(random.adj[path[i]][path[i + 1]]);
      }
    }
  }
}

TEST_P(DigraphPropertyTest, SimpleCyclesAreSimpleAndClosed) {
  RandomGraph random = MakeRandom(GetParam() * 613 + 1);
  random.graph.EnumerateSimpleCycles(
      [&](const std::vector<int>& cycle) {
        EXPECT_GE(cycle.size(), 2u);
        EXPECT_EQ(cycle.front(), cycle.back());
        std::vector<bool> seen(random.graph.num_nodes(), false);
        for (size_t i = 0; i + 1 < cycle.size(); ++i) {
          EXPECT_TRUE(random.adj[cycle[i]][cycle[i + 1]]);
          EXPECT_FALSE(seen[cycle[i]]) << "node repeated";
          seen[cycle[i]] = true;
        }
        return true;
      },
      /*max_cycles=*/5000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigraphPropertyTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace mvrc
