#include "btp/program.h"

#include <gtest/gtest.h>

#include "btp/unfold.h"

namespace mvrc {
namespace {

class BtpTest : public ::testing::Test {
 protected:
  BtpTest() {
    parent_ = schema_.AddRelation("P", {"p", "v"}, {"p"});
    child_ = schema_.AddRelation("C", {"c", "p"}, {"c"});
    fk_ = schema_.AddForeignKey("f", child_, {"p"}, parent_);
  }

  Statement Sel(const std::string& label, RelationId rel) {
    return Statement::KeySelect(label, schema_, rel, AttrSet{1});
  }

  Schema schema_;
  RelationId parent_ = -1, child_ = -1;
  ForeignKeyId fk_ = -1;
};

TEST_F(BtpTest, DefaultStructureIsLinearSequence) {
  Btp program("P");
  program.AddStatement(Sel("q1", parent_));
  program.AddStatement(Sel("q2", child_));
  // No Finish() call: the effective root is the all-statements sequence.
  EXPECT_TRUE(program.IsLinear());
  std::vector<Ltp> ltps = UnfoldAtMost2(program);
  ASSERT_EQ(ltps.size(), 1u);
  EXPECT_EQ(ltps[0].size(), 2);
}

TEST_F(BtpTest, IsLinearDetectsControlFlow) {
  Btp with_loop("L");
  StmtId q = with_loop.AddStatement(Sel("q1", parent_));
  with_loop.Finish(with_loop.Loop(with_loop.Stmt(q)));
  EXPECT_FALSE(with_loop.IsLinear());

  Btp with_choice("C");
  StmtId a = with_choice.AddStatement(Sel("q1", parent_));
  StmtId b = with_choice.AddStatement(Sel("q2", parent_));
  with_choice.Finish(with_choice.Choice(with_choice.Stmt(a), with_choice.Stmt(b)));
  EXPECT_FALSE(with_choice.IsLinear());
}

TEST_F(BtpTest, FkConstraintValidation) {
  Btp program("P");
  StmtId qp = program.AddStatement(
      Statement::KeyUpdate("qp", schema_, parent_, AttrSet{}, AttrSet{1}));
  StmtId qc = program.AddStatement(Sel("qc", child_));
  program.AddFkConstraint(schema_, qp, fk_, qc);
  ASSERT_EQ(program.fk_constraints().size(), 1u);
  EXPECT_EQ(program.fk_constraints()[0], (FkConstraint{qp, fk_, qc}));
}

TEST_F(BtpTest, FkConstraintRejectsWrongRelations) {
  Btp program("P");
  StmtId qp = program.AddStatement(Sel("qp", parent_));
  StmtId qc = program.AddStatement(Sel("qc", child_));
  // Swapped parent/child relations: rel(child) must be dom(f).
  EXPECT_DEATH(program.AddFkConstraint(schema_, qc, fk_, qp), "dom");
}

TEST_F(BtpTest, FkConstraintRejectsPredicateParent) {
  Btp program("P");
  StmtId qp = program.AddStatement(
      Statement::PredSelect("qp", schema_, parent_, AttrSet{1}, AttrSet{1}));
  StmtId qc = program.AddStatement(Sel("qc", child_));
  EXPECT_DEATH(program.AddFkConstraint(schema_, qp, fk_, qc), "key-based");
}

TEST_F(BtpTest, DoubleFinishAborts) {
  Btp program("P");
  StmtId q = program.AddStatement(Sel("q1", parent_));
  program.Finish(program.Stmt(q));
  EXPECT_DEATH(program.Finish(program.Stmt(q)), "twice");
}

TEST_F(BtpTest, DebugStringListsStatementsAndConstraints) {
  Btp program("Prog");
  StmtId qp = program.AddStatement(
      Statement::KeyUpdate("qp", schema_, parent_, AttrSet{}, AttrSet{1}));
  StmtId qc = program.AddStatement(Sel("qc", child_));
  program.AddFkConstraint(schema_, qp, fk_, qc);
  std::string text = program.ToDebugString(schema_);
  EXPECT_NE(text.find("BTP Prog"), std::string::npos);
  EXPECT_NE(text.find("qp: key upd P"), std::string::npos);
  EXPECT_NE(text.find("constraint: qp = f(qc)"), std::string::npos);
}

TEST_F(BtpTest, LtpDebugString) {
  Btp program("P");
  program.AddStatement(Sel("q1", parent_));
  program.AddStatement(Sel("q2", child_));
  std::vector<Ltp> ltps = UnfoldAtMost2(program);
  EXPECT_EQ(ltps[0].ToDebugString(), "P = q1; q2");

  Btp empty("E");
  StmtId q = empty.AddStatement(Sel("q1", parent_));
  empty.Finish(empty.Optional(empty.Stmt(q)));
  std::vector<Ltp> unfolded = UnfoldAtMost2(empty);
  ASSERT_EQ(unfolded.size(), 2u);
  EXPECT_EQ(unfolded[1].ToDebugString(), "E2 = <empty>");
}

}  // namespace
}  // namespace mvrc
