#include "sql/analyzer.h"

#include <gtest/gtest.h>

#include "btp/unfold.h"

namespace mvrc {
namespace {

Workload MustAnalyze(const std::string& source) {
  Result<Workload> result = ParseWorkloadSql(source);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.ok() ? std::move(result).value() : Workload{};
}

constexpr char kSchema[] =
    "TABLE T(k, a, b, PRIMARY KEY(k));\n"
    "TABLE U(k1, k2, v, PRIMARY KEY(k1, k2));\n";

TEST(SqlAnalyzerTest, KeySelectClassification) {
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM P(:k):\nSELECT a FROM T WHERE k = :k;\nCOMMIT;");
  const Statement& q = w.programs[0].statement(0);
  EXPECT_EQ(q.type(), StatementType::kKeySelect);
  EXPECT_EQ(*q.read_set(), w.schema.MakeAttrSet(0, {"a"}));
  EXPECT_FALSE(q.pread_set().has_value());
}

TEST(SqlAnalyzerTest, PredicateWhenKeyNotFullyBound) {
  // Composite key with only one column bound: predicate-based.
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM P(:k):\nSELECT v FROM U WHERE k1 = :k;\nCOMMIT;");
  const Statement& q = w.programs[0].statement(0);
  EXPECT_EQ(q.type(), StatementType::kPredSelect);
  EXPECT_EQ(*q.pread_set(), w.schema.MakeAttrSet(1, {"k1"}));
}

TEST(SqlAnalyzerTest, PredicateWhenNonEqualityOnKey) {
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM P(:k):\nSELECT a FROM T WHERE k >= :k;\nCOMMIT;");
  EXPECT_EQ(w.programs[0].statement(0).type(), StatementType::kPredSelect);
}

TEST(SqlAnalyzerTest, UpdateSetsFromExpressionsAndReturning) {
  Workload w = MustAnalyze(
      std::string(kSchema) +
      "PROGRAM P(:k, :v):\n"
      "UPDATE T SET a = a + :v, b = 7 WHERE k = :k RETURNING b INTO :b;\nCOMMIT;");
  const Statement& q = w.programs[0].statement(0);
  EXPECT_EQ(q.type(), StatementType::kKeyUpdate);
  EXPECT_EQ(*q.write_set(), w.schema.MakeAttrSet(0, {"a", "b"}));
  // ReadSet: a (expression) plus b (RETURNING); the constant 7 reads nothing.
  EXPECT_EQ(*q.read_set(), w.schema.MakeAttrSet(0, {"a", "b"}));
}

TEST(SqlAnalyzerTest, ParameterOnlyUpdateReadsNothing) {
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM P(:k, :v):\nUPDATE T SET a = :v WHERE k = :k;\nCOMMIT;");
  EXPECT_TRUE(w.programs[0].statement(0).read_set()->empty());
}

TEST(SqlAnalyzerTest, InsertAndDeleteWriteAllAttributes) {
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM P(:k):\n"
                           "INSERT INTO T VALUES (:k, 1, 2);\n"
                           "DELETE FROM T WHERE k = :k;\nCOMMIT;");
  EXPECT_EQ(w.programs[0].statement(0).type(), StatementType::kInsert);
  EXPECT_EQ(*w.programs[0].statement(0).write_set(), AttrSet::FirstN(3));
  EXPECT_EQ(w.programs[0].statement(1).type(), StatementType::kKeyDelete);
}

TEST(SqlAnalyzerTest, PredicateDelete) {
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM P(:v):\nDELETE FROM T WHERE a < :v;\nCOMMIT;");
  const Statement& q = w.programs[0].statement(0);
  EXPECT_EQ(q.type(), StatementType::kPredDelete);
  EXPECT_EQ(*q.pread_set(), w.schema.MakeAttrSet(0, {"a"}));
}

TEST(SqlAnalyzerTest, ControlFlowLowering) {
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM P(:k):\n"
                           "IF ? THEN\n  SELECT a FROM T WHERE k = :k;\nEND IF;\n"
                           "LOOP\n  SELECT b FROM T WHERE k = :k;\nEND LOOP;\n"
                           "COMMIT;");
  EXPECT_FALSE(w.programs[0].IsLinear());
  // Unfold: optional (2) x loop (0,1,2 -> 3) = 6 linear programs.
  EXPECT_EQ(UnfoldAtMost2(w.programs[0]).size(), 6u);
}

TEST(SqlAnalyzerTest, ForeignKeyFromWhereBindings) {
  std::string source =
      "TABLE P(p, v, PRIMARY KEY(p));\n"
      "TABLE C(c, p, PRIMARY KEY(c));\n"
      "FOREIGN KEY f: C(p) REFERENCES P;\n"
      "PROGRAM Prog(:p, :c):\n"
      "UPDATE P SET v = v + 1 WHERE p = :p;\n"
      "SELECT c FROM C WHERE c = :c AND p = :p;\nCOMMIT;";
  Workload w = MustAnalyze(source);
  ASSERT_EQ(w.programs[0].fk_constraints().size(), 1u);
  const FkConstraint& constraint = w.programs[0].fk_constraints()[0];
  EXPECT_EQ(constraint.parent, 0);  // the P update
  EXPECT_EQ(constraint.child, 1);   // the C select
}

TEST(SqlAnalyzerTest, ForeignKeyFromIntoBinding) {
  // The parent key comes out of a SELECT INTO; the child references it.
  std::string source =
      "TABLE P(p, v, PRIMARY KEY(p));\n"
      "TABLE C(c, v, PRIMARY KEY(c));\n"
      "FOREIGN KEY f: P(v) REFERENCES C;\n"
      "PROGRAM Prog(:p):\n"
      "SELECT v INTO :x FROM P WHERE p = :p;\n"
      "UPDATE C SET v = 0 WHERE c = :x;\nCOMMIT;";
  Workload w = MustAnalyze(source);
  ASSERT_EQ(w.programs[0].fk_constraints().size(), 1u);
  EXPECT_EQ(w.programs[0].fk_constraints()[0].parent, 1);
  EXPECT_EQ(w.programs[0].fk_constraints()[0].child, 0);
}

TEST(SqlAnalyzerTest, NoForeignKeyFromPredicateOutputs) {
  // A predicate select's INTO binding is not functional: no constraint.
  std::string source =
      "TABLE P(p, v, PRIMARY KEY(p));\n"
      "TABLE C(c, v, PRIMARY KEY(c));\n"
      "FOREIGN KEY f: P(v) REFERENCES C;\n"
      "PROGRAM Prog(:t):\n"
      "SELECT v INTO :x FROM P WHERE v >= :t;\n"
      "UPDATE C SET v = 0 WHERE c = :x;\nCOMMIT;";
  Workload w = MustAnalyze(source);
  EXPECT_TRUE(w.programs[0].fk_constraints().empty());
}

TEST(SqlAnalyzerTest, NoForeignKeyOnParameterMismatch) {
  std::string source =
      "TABLE P(p, v, PRIMARY KEY(p));\n"
      "TABLE C(c, p, PRIMARY KEY(c));\n"
      "FOREIGN KEY f: C(p) REFERENCES P;\n"
      "PROGRAM Prog(:p, :q, :c):\n"
      "UPDATE P SET v = v + 1 WHERE p = :q;\n"
      "SELECT c FROM C WHERE c = :c AND p = :p;\nCOMMIT;";
  Workload w = MustAnalyze(source);
  EXPECT_TRUE(w.programs[0].fk_constraints().empty());
}

TEST(SqlAnalyzerTest, GlobalStatementNumbering) {
  Workload w = MustAnalyze(std::string(kSchema) +
                           "PROGRAM A(:k):\nSELECT a FROM T WHERE k = :k;\nCOMMIT;\n"
                           "PROGRAM B(:k):\nSELECT b FROM T WHERE k = :k;\nCOMMIT;");
  EXPECT_EQ(w.programs[0].statement(0).label(), "q1");
  EXPECT_EQ(w.programs[1].statement(0).label(), "q2");
}

TEST(SqlAnalyzerTest, JoinDesugarsToPerRelationSelections) {
  // SELECT over two relations becomes one selection per relation; WHERE
  // columns and select columns are attributed to their owners.
  std::string source =
      "TABLE Orders(o_id, o_total, PRIMARY KEY(o_id));\n"
      "TABLE Lines(l_id, l_o_id, l_qty, PRIMARY KEY(l_id));\n"
      "PROGRAM Q(:o):\n"
      "SELECT o_total, l_qty FROM Orders, Lines\n"
      "  WHERE o_id = :o AND l_o_id = :o AND l_qty > 10;\nCOMMIT;";
  Result<Workload> result = ParseWorkloadSql(source);
  ASSERT_TRUE(result.ok()) << result.error();
  const Workload& w = result.value();
  ASSERT_EQ(w.programs[0].num_statements(), 2);
  const Statement& orders_part = w.programs[0].statement(0);
  const Statement& lines_part = w.programs[0].statement(1);
  // Orders: PK fully bound -> key-based; reads o_total.
  EXPECT_EQ(orders_part.type(), StatementType::kKeySelect);
  EXPECT_EQ(*orders_part.read_set(), w.schema.MakeAttrSet(0, {"o_total"}));
  // Lines: PK (l_id) not bound -> predicate; PReadSet = {l_o_id, l_qty}.
  EXPECT_EQ(lines_part.type(), StatementType::kPredSelect);
  EXPECT_EQ(*lines_part.pread_set(), w.schema.MakeAttrSet(1, {"l_o_id", "l_qty"}));
  EXPECT_EQ(*lines_part.read_set(), w.schema.MakeAttrSet(1, {"l_qty"}));
}

TEST(SqlAnalyzerTest, JoinOutputBindingsEnableForeignKeys) {
  // The key-based component of a join can anchor a foreign-key constraint
  // through its INTO output.
  std::string source =
      "TABLE Orders(o_id, o_total, PRIMARY KEY(o_id));\n"
      "TABLE Lines(l_id, l_o_id, l_qty, PRIMARY KEY(l_id));\n"
      "FOREIGN KEY f: Lines(l_o_id) REFERENCES Orders;\n"
      "PROGRAM Q(:o, :l):\n"
      "SELECT o_total FROM Orders WHERE o_id = :o;\n"
      "SELECT l_qty FROM Lines WHERE l_id = :l AND l_o_id = :o;\nCOMMIT;";
  Result<Workload> result = ParseWorkloadSql(source);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().programs[0].fk_constraints().size(), 1u);
}

TEST(SqlAnalyzerTest, JoinRejectsAmbiguousColumn) {
  std::string source =
      "TABLE A(id, v, PRIMARY KEY(id));\n"
      "TABLE B(id, w, PRIMARY KEY(id));\n"
      "PROGRAM Q(:x):\n"
      "SELECT v, w FROM A, B WHERE id = :x;\nCOMMIT;";
  Result<Workload> result = ParseWorkloadSql(source);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("ambiguous"), std::string::npos);
}

TEST(SqlAnalyzerTest, JoinStatementsShareTheGlobalNumbering) {
  std::string source =
      "TABLE A(a_id, a_v, PRIMARY KEY(a_id));\n"
      "TABLE B(b_id, b_v, PRIMARY KEY(b_id));\n"
      "PROGRAM Q(:x):\n"
      "SELECT a_v, b_v FROM A, B WHERE a_v = :x AND b_v = :x;\n"
      "SELECT a_v FROM A WHERE a_id = :x;\nCOMMIT;";
  Result<Workload> result = ParseWorkloadSql(source);
  ASSERT_TRUE(result.ok()) << result.error();
  const Btp& program = result.value().programs[0];
  ASSERT_EQ(program.num_statements(), 3);
  EXPECT_EQ(program.statement(0).label(), "q1");
  EXPECT_EQ(program.statement(1).label(), "q2");
  EXPECT_EQ(program.statement(2).label(), "q3");
}

TEST(SqlAnalyzerTest, ErrorOnUnknownRelation) {
  Result<Workload> result = ParseWorkloadSql(
      "PROGRAM P(:k):\nSELECT a FROM Nope WHERE k = :k;\nCOMMIT;");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("Nope"), std::string::npos);
}

TEST(SqlAnalyzerTest, ErrorOnUnknownColumn) {
  EXPECT_FALSE(ParseWorkloadSql(std::string(kSchema) +
                                "PROGRAM P(:k):\nSELECT z FROM T WHERE k = :k;\nCOMMIT;")
                   .ok());
}

TEST(SqlAnalyzerTest, ErrorOnInsertArity) {
  EXPECT_FALSE(ParseWorkloadSql(std::string(kSchema) +
                                "PROGRAM P(:k):\nINSERT INTO T VALUES (:k, 1);\nCOMMIT;")
                   .ok());
}

}  // namespace
}  // namespace mvrc
