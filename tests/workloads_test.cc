// End-to-end reproduction checks for the paper's evaluation on the three
// benchmarks: Table 2 characteristics and the robust subsets of Figures 6
// and 7.

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "robust/detector.h"
#include "robust/subsets.h"
#include "summary/build_summary.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

// Converts a list of abbreviation sets into subset masks for comparison.
std::set<uint32_t> Masks(const Workload& workload,
                         const std::vector<std::vector<std::string>>& subsets) {
  std::set<uint32_t> out;
  for (const std::vector<std::string>& subset : subsets) {
    uint32_t mask = 0;
    for (const std::string& abbrev : subset) {
      auto it = std::find(workload.abbreviations.begin(), workload.abbreviations.end(),
                          abbrev);
      EXPECT_NE(it, workload.abbreviations.end()) << "unknown abbreviation " << abbrev;
      mask |= uint32_t{1} << (it - workload.abbreviations.begin());
    }
    out.insert(mask);
  }
  return out;
}

std::set<uint32_t> MaximalRobust(const Workload& workload, AnalysisSettings settings,
                                 Method method) {
  SubsetReport report = AnalyzeSubsets(workload.programs, settings, method);
  return {report.maximal_masks.begin(), report.maximal_masks.end()};
}

// ---------------------------------------------------------------------------
// Table 2: benchmark characteristics.
// ---------------------------------------------------------------------------

TEST(Table2Test, SmallBankCharacteristics) {
  Workload smallbank = MakeSmallBank();
  EXPECT_EQ(smallbank.schema.num_relations(), 3);
  EXPECT_EQ(smallbank.programs.size(), 5u);
  std::vector<Ltp> ltps = UnfoldAtMost2(smallbank.programs);
  EXPECT_EQ(ltps.size(), 5u);  // all programs are already linear
  SummaryGraph graph =
      BuildSummaryGraph(std::move(ltps), AnalysisSettings::AttrDepFk());
  EXPECT_EQ(graph.num_edges(), 56);
  EXPECT_EQ(graph.num_counterflow_edges(), 12);
}

TEST(Table2Test, AuctionCharacteristics) {
  Workload auction = MakeAuction();
  EXPECT_EQ(auction.schema.num_relations(), 3);
  EXPECT_EQ(auction.programs.size(), 2u);
  SummaryGraph graph =
      BuildSummaryGraph(auction.programs, AnalysisSettings::AttrDepFk());
  EXPECT_EQ(graph.num_programs(), 3);
  EXPECT_EQ(graph.num_edges(), 17);
  EXPECT_EQ(graph.num_counterflow_edges(), 1);
}

TEST(Table2Test, TpccCharacteristics) {
  Workload tpcc = MakeTpcc();
  EXPECT_EQ(tpcc.schema.num_relations(), 9);
  EXPECT_EQ(tpcc.programs.size(), 5u);
  SummaryGraph graph = BuildSummaryGraph(tpcc.programs, AnalysisSettings::AttrDepFk());
  EXPECT_EQ(graph.num_programs(), 13);
  // Table 2 reports 396 (83). Our encoding of Figure 17 yields 405 edges —
  // the 83 counterflow edges match the paper exactly; the +9 non-counterflow
  // edges correspond to one statement pair times its unfolding multiplicity
  // and stem from an unlisted modeling detail of the paper's TPC-C BTPs
  // (see EXPERIMENTS.md). Robust subsets are unaffected (Figures 6/7 tests).
  EXPECT_EQ(graph.num_edges(), 405);
  EXPECT_EQ(graph.num_counterflow_edges(), 83);
}

TEST(Table2Test, AuctionNEdgeFormula) {
  // Table 2: Auction(n) has 3n unfolded programs and 8n + 9n^2 edges of
  // which n are counterflow.
  for (int n : {1, 2, 3, 5, 8}) {
    Workload workload = MakeAuctionN(n);
    EXPECT_EQ(workload.programs.size(), static_cast<size_t>(2 * n));
    SummaryGraph graph =
        BuildSummaryGraph(workload.programs, AnalysisSettings::AttrDepFk());
    EXPECT_EQ(graph.num_programs(), 3 * n) << "n=" << n;
    EXPECT_EQ(graph.num_edges(), 8 * n + 9 * n * n) << "n=" << n;
    EXPECT_EQ(graph.num_counterflow_edges(), n) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Figure 6: maximal robust subsets under Algorithm 2 (type-II cycles).
// ---------------------------------------------------------------------------

TEST(Figure6Test, SmallBankAllSettings) {
  Workload workload = MakeSmallBank();
  std::set<uint32_t> expected =
      Masks(workload, {{"Am", "DC", "TS"}, {"Bal", "DC"}, {"Bal", "TS"}});
  for (AnalysisSettings settings :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
        AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()}) {
    EXPECT_EQ(MaximalRobust(workload, settings, Method::kTypeII), expected)
        << settings.name();
  }
}

TEST(Figure6Test, TpccWithoutAttributeFk) {
  Workload workload = MakeTpcc();
  std::set<uint32_t> expected = Masks(workload, {{"OS", "SL"}, {"NO"}});
  for (AnalysisSettings settings :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
        AnalysisSettings::TupleDepFk()}) {
    EXPECT_EQ(MaximalRobust(workload, settings, Method::kTypeII), expected)
        << settings.name();
  }
}

TEST(Figure6Test, TpccAttrDepFk) {
  Workload workload = MakeTpcc();
  std::set<uint32_t> expected = Masks(workload, {{"OS", "Pay", "SL"}, {"NO", "Pay"}});
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::AttrDepFk(), Method::kTypeII),
            expected);
}

TEST(Figure6Test, AuctionAllSettings) {
  Workload workload = MakeAuction();
  std::set<uint32_t> without_fk = Masks(workload, {{"FB"}});
  std::set<uint32_t> with_fk = Masks(workload, {{"FB", "PB"}});
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::TupleDep(), Method::kTypeII),
            without_fk);
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::AttrDep(), Method::kTypeII),
            without_fk);
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::TupleDepFk(), Method::kTypeII),
            with_fk);
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::AttrDepFk(), Method::kTypeII),
            with_fk);
}

// ---------------------------------------------------------------------------
// Figure 7: maximal robust subsets under the type-I baseline [3].
// ---------------------------------------------------------------------------

TEST(Figure7Test, SmallBankAllSettings) {
  Workload workload = MakeSmallBank();
  std::set<uint32_t> expected = Masks(workload, {{"Am", "DC", "TS"}, {"Bal"}});
  for (AnalysisSettings settings :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
        AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()}) {
    EXPECT_EQ(MaximalRobust(workload, settings, Method::kTypeI), expected)
        << settings.name();
  }
}

TEST(Figure7Test, TpccWithoutAttributeFk) {
  Workload workload = MakeTpcc();
  std::set<uint32_t> expected = Masks(workload, {{"OS", "SL"}, {"NO"}});
  for (AnalysisSettings settings :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
        AnalysisSettings::TupleDepFk()}) {
    EXPECT_EQ(MaximalRobust(workload, settings, Method::kTypeI), expected)
        << settings.name();
  }
}

TEST(Figure7Test, TpccAttrDepFk) {
  Workload workload = MakeTpcc();
  std::set<uint32_t> expected =
      Masks(workload, {{"NO", "Pay"}, {"Pay", "SL"}, {"OS", "SL"}});
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::AttrDepFk(), Method::kTypeI),
            expected);
}

TEST(Figure7Test, AuctionAllSettings) {
  Workload workload = MakeAuction();
  std::set<uint32_t> without_fk = Masks(workload, {{"FB"}});
  std::set<uint32_t> with_fk = Masks(workload, {{"FB"}, {"PB"}});
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::TupleDep(), Method::kTypeI),
            without_fk);
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::AttrDep(), Method::kTypeI),
            without_fk);
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::TupleDepFk(), Method::kTypeI),
            with_fk);
  EXPECT_EQ(MaximalRobust(workload, AnalysisSettings::AttrDepFk(), Method::kTypeI),
            with_fk);
}

// ---------------------------------------------------------------------------
// Cross-cutting properties.
// ---------------------------------------------------------------------------

TEST(RobustSubsetsTest, TypeIRobustImpliesTypeIIRobust) {
  // Every type-II cycle is a type-I cycle, so the type-I test is at most as
  // permissive: anything robust under type-I is robust under type-II.
  for (const Workload& workload : {MakeSmallBank(), MakeTpcc(), MakeAuction()}) {
    for (AnalysisSettings settings :
         {AnalysisSettings::AttrDep(), AnalysisSettings::AttrDepFk()}) {
      SubsetReport type1 = AnalyzeSubsets(workload.programs, settings, Method::kTypeI);
      SubsetReport type2 = AnalyzeSubsets(workload.programs, settings, Method::kTypeII);
      std::set<uint32_t> type2_robust(type2.robust_masks.begin(),
                                      type2.robust_masks.end());
      for (uint32_t mask : type1.robust_masks) {
        EXPECT_TRUE(type2_robust.count(mask))
            << workload.name << " " << settings.name() << " mask=" << mask;
      }
    }
  }
}

TEST(RobustSubsetsTest, RobustnessClosedUnderSubsets) {
  // Proposition 5.2 at the detector level: every subset of a robust subset
  // must itself be reported robust.
  Workload workload = MakeSmallBank();
  SubsetReport report =
      AnalyzeSubsets(workload.programs, AnalysisSettings::AttrDepFk(), Method::kTypeII);
  std::set<uint32_t> robust(report.robust_masks.begin(), report.robust_masks.end());
  for (uint32_t mask : report.robust_masks) {
    for (uint32_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      EXPECT_TRUE(robust.count(sub)) << "subset " << sub << " of robust " << mask;
    }
  }
}

TEST(RobustSubsetsTest, DescribeMaximal) {
  Workload workload = MakeAuction();
  SubsetReport report =
      AnalyzeSubsets(workload.programs, AnalysisSettings::AttrDepFk(), Method::kTypeII);
  std::vector<std::string> described = report.DescribeMaximal(workload.abbreviations);
  ASSERT_EQ(described.size(), 1u);
  EXPECT_EQ(described[0], "{FB, PB}");
}

TEST(RobustSubsetsTest, TpccDeliveryAloneNotDetected) {
  // §7.2: {Delivery} is a known false negative of Algorithm 2 (two Delivery
  // instances over the same warehouse cannot actually interleave badly, but
  // the summary graph cannot see the predicate semantics).
  Workload workload = MakeTpcc();
  std::vector<Btp> delivery_only;
  delivery_only.push_back(workload.programs[3]);
  ASSERT_EQ(delivery_only[0].name(), "Delivery");
  EXPECT_FALSE(IsRobustAgainstMvrc(delivery_only, AnalysisSettings::AttrDepFk(),
                                   Method::kTypeII));
}

}  // namespace
}  // namespace mvrc
