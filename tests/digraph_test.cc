#include "graph/digraph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace mvrc {
namespace {

TEST(DigraphTest, ReachabilityIsReflexive) {
  Digraph g(3);
  Digraph::Reachability reach = g.ComputeReachability();
  for (int v = 0; v < 3; ++v) EXPECT_TRUE(reach.At(v, v));
  EXPECT_FALSE(reach.At(0, 1));
}

TEST(DigraphTest, ReachabilityIsTransitive) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Digraph::Reachability reach = g.ComputeReachability();
  EXPECT_TRUE(reach.At(0, 2));
  EXPECT_FALSE(reach.At(2, 0));
  EXPECT_FALSE(reach.At(0, 3));
}

TEST(DigraphTest, ParallelEdgesCollapsed) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.OutNeighbors(0).size(), 1u);
}

TEST(DigraphTest, ShortestPath) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 2);
  g.AddEdge(2, 4);
  std::vector<int> path = g.ShortestPath(0, 4);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 4);
  EXPECT_EQ(g.ShortestPath(4, 0), std::vector<int>{});
  EXPECT_EQ(g.ShortestPath(2, 2), std::vector<int>{2});
}

TEST(DigraphTest, HasCycleDetectsSelfLoop) {
  Digraph g(2);
  EXPECT_FALSE(g.HasCycle());
  g.AddEdge(1, 1);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, HasCycleDetectsLongCycle) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_FALSE(g.HasCycle());
  g.AddEdge(3, 1);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, StronglyConnectedComponents) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  std::vector<int> comp = g.StronglyConnectedComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
  EXPECT_NE(comp[3], comp[4]);
}

TEST(DigraphTest, EnumerateSimpleCyclesFindsAll) {
  // Two 2-cycles sharing node 0, plus a self-loop at 2.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 2);
  std::set<std::vector<int>> cycles;
  int count = g.EnumerateSimpleCycles([&](const std::vector<int>& c) {
    cycles.insert(c);
    return true;
  });
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(cycles.count({0, 1, 0}) == 1);
  EXPECT_TRUE(cycles.count({0, 2, 0}) == 1);
  EXPECT_TRUE(cycles.count({2, 2}) == 1);
}

TEST(DigraphTest, EnumerateSimpleCyclesRespectsCap) {
  Digraph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) g.AddEdge(i, j);
    }
  }
  int count = g.EnumerateSimpleCycles([](const std::vector<int>&) { return true; },
                                      /*max_cycles=*/5);
  EXPECT_EQ(count, 5);
}

TEST(DigraphTest, EnumerateSimpleCyclesEarlyStop) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 0);
  int calls = 0;
  g.EnumerateSimpleCycles([&](const std::vector<int>&) {
    ++calls;
    return false;  // stop immediately
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mvrc
