// The durability layer's contract: every payload round-trips bit-identical
// through the paged CRC format; every corruption (torn page, flipped byte,
// truncation, bad magic, stale temp file) is detected and *quarantined*,
// never fatal and never silently restored; and — the crash matrix — a fault
// injected at every reachable point of the snapshot path leaves the store
// in one of exactly two states, "previous snapshot" or "new snapshot",
// with restore reproducing that state's verdicts or quarantining. No third
// outcome.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/session_snapshot.h"
#include "persist/snapshot_store.h"
#include "service/session_manager.h"
#include "service/workload_session.h"
#include "summary/dep_tables.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "workloads/builtins.h"
#include "workloads/sql_texts.h"

namespace mvrc {
namespace {

namespace fs = std::filesystem;

// A fresh directory per test, removed on scope exit.
struct TempDir {
  TempDir() {
    std::string templ = ::testing::TempDir() + "mvrc_persist_XXXXXX";
    std::vector<char> buffer(templ.begin(), templ.end());
    buffer.push_back('\0');
    EXPECT_NE(::mkdtemp(buffer.data()), nullptr);
    path = buffer.data();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string DeterministicBytes(size_t n) {
  std::string out(n, '\0');
  uint32_t state = 0x2545F491u + static_cast<uint32_t>(n);
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;  // LCG: reproducible junk
    out[i] = static_cast<char>(state >> 24);
  }
  return out;
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x5A;
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST(Crc32Test, MatchesTheReferenceCheckValue) {
  // The standard CRC-32 check value ("check" column of the Rocksoft model).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string data = DeterministicBytes(1000);
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t first = Crc32(data.data(), 400);
  EXPECT_EQ(Crc32(data.data() + 400, 600, first), whole);
}

class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjection::Global().Reset();
    store_ = std::make_unique<SnapshotStore>(dir_.path);
    ASSERT_TRUE(store_->Init().ok());
  }
  void TearDown() override { FaultInjection::Global().Reset(); }

  TempDir dir_;
  std::unique_ptr<SnapshotStore> store_;
};

TEST_F(SnapshotStoreTest, RoundTripsPayloadsAcrossPageBoundaries) {
  const size_t sizes[] = {0,
                          1,
                          100,
                          SnapshotStore::kChunkSize - 1,
                          SnapshotStore::kChunkSize,
                          SnapshotStore::kChunkSize + 1,
                          3 * SnapshotStore::kChunkSize + 7};
  for (size_t size : sizes) {
    SCOPED_TRACE(size);
    const std::string payload = DeterministicBytes(size);
    ASSERT_TRUE(store_->Write("k", payload).ok());
    Result<std::string> read = store_->Read("k");
    ASSERT_TRUE(read.ok()) << read.error();
    EXPECT_EQ(read.value(), payload);
    // File size is always a whole number of pages: header + ceil(n/chunk).
    const uint64_t pages = (size + SnapshotStore::kChunkSize - 1) / SnapshotStore::kChunkSize;
    EXPECT_EQ(fs::file_size(store_->PathForKey("k")), (pages + 1) * SnapshotStore::kPageSize);
  }
}

TEST_F(SnapshotStoreTest, WriteAtomicallyReplaces) {
  ASSERT_TRUE(store_->Write("k", "old payload").ok());
  ASSERT_TRUE(store_->Write("k", DeterministicBytes(10000)).ok());
  Result<std::string> read = store_->Read("k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), DeterministicBytes(10000));
  EXPECT_EQ(store_->ListKeys(), std::vector<std::string>{"k"});
}

TEST_F(SnapshotStoreTest, RemoveIsIdempotent) {
  ASSERT_TRUE(store_->Write("k", "x").ok());
  EXPECT_TRUE(store_->Remove("k").ok());
  EXPECT_FALSE(store_->Read("k").ok());
  EXPECT_TRUE(store_->Remove("k").ok());  // already gone: still ok
}

TEST_F(SnapshotStoreTest, KeyCodecRoundTripsAndStaysInjective) {
  for (const std::string name : {"plain", "with space", "a/b\\c", "pct%20esc", "\xC3\xA9"}) {
    SCOPED_TRACE(name);
    const std::string encoded = SnapshotStore::EncodeKey(name);
    // Encoded keys are filesystem-safe by construction.
    EXPECT_EQ(encoded.find('/'), std::string::npos);
    Result<std::string> decoded = SnapshotStore::DecodeKey(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), name);
  }
  // "a b" and the literal "a%20b" must land on different files.
  EXPECT_NE(SnapshotStore::EncodeKey("a b"), SnapshotStore::EncodeKey("a%20b"));
  EXPECT_FALSE(SnapshotStore::DecodeKey("bad%2").ok());
  EXPECT_FALSE(SnapshotStore::DecodeKey("bad%zz").ok());
}

TEST_F(SnapshotStoreTest, FlippedPayloadByteIsQuarantinedNotReturned) {
  ASSERT_TRUE(store_->Write("k", DeterministicBytes(500)).ok());
  // Page 1, past the 8-byte chunk header: inside the checksummed payload.
  FlipByteAt(store_->PathForKey("k"), SnapshotStore::kPageSize + 8 + 100);
  EXPECT_FALSE(store_->Read("k").ok());
  SnapshotStore::ScanResult scan = store_->ScanAll();
  EXPECT_TRUE(scan.payloads.empty());
  ASSERT_EQ(scan.quarantined.size(), 1u);
  EXPECT_TRUE(fs::exists(scan.quarantined[0]));
  EXPECT_FALSE(fs::exists(store_->PathForKey("k")));
  // A second scan is clean: quarantine is idempotent, not a loop.
  EXPECT_TRUE(store_->ScanAll().quarantined.empty());
}

TEST_F(SnapshotStoreTest, BadMagicAndBadHeaderAreQuarantined) {
  ASSERT_TRUE(store_->Write("magic", "payload").ok());
  ASSERT_TRUE(store_->Write("header", "payload").ok());
  FlipByteAt(store_->PathForKey("magic"), 0);    // magic
  FlipByteAt(store_->PathForKey("header"), 16);  // page count: breaks header CRC
  SnapshotStore::ScanResult scan = store_->ScanAll();
  EXPECT_TRUE(scan.payloads.empty());
  EXPECT_EQ(scan.quarantined.size(), 2u);
}

TEST_F(SnapshotStoreTest, TruncatedFileIsQuarantined) {
  ASSERT_TRUE(store_->Write("k", DeterministicBytes(3 * SnapshotStore::kChunkSize)).ok());
  fs::resize_file(store_->PathForKey("k"), SnapshotStore::kPageSize + 100);
  SnapshotStore::ScanResult scan = store_->ScanAll();
  EXPECT_TRUE(scan.payloads.empty());
  EXPECT_EQ(scan.quarantined.size(), 1u);
}

TEST_F(SnapshotStoreTest, ScanRemovesTempDebrisAndKeepsValidFiles) {
  ASSERT_TRUE(store_->Write("good", "payload").ok());
  const std::string debris = store_->PathForKey("half") + SnapshotStore::kTempSuffix;
  std::ofstream(debris) << "partial write from a crashed process";
  SnapshotStore::ScanResult scan = store_->ScanAll();
  EXPECT_FALSE(fs::exists(debris));
  ASSERT_EQ(scan.payloads.size(), 1u);
  EXPECT_EQ(scan.payloads[0].first, "good");
  EXPECT_EQ(scan.payloads[0].second, "payload");
  EXPECT_TRUE(scan.quarantined.empty());
}

// ---------------------------------------------------------------------------
// Session snapshots: encode -> restore must reproduce the session exactly.

constexpr char kTinySchemaSql[] =
    "TABLE Wallet(id, balance, PRIMARY KEY(id));\n"
    "\n"
    "PROGRAM Deposit(:a, :v):\n"
    "  UPDATE Wallet SET balance = balance + :v WHERE id = :a;\n"
    "COMMIT;\n";

constexpr char kDepositV2Sql[] =
    "PROGRAM Deposit(:a, :v):\n"
    "  SELECT balance INTO :b FROM Wallet WHERE id = :a;\n"
    "  UPDATE Wallet SET balance = :b + :v WHERE id = :a;\n"
    "COMMIT;\n";

// The observable state restore must reproduce: program set and the full
// type-I/II verdicts (edge counts pin the summary graph, not just the bit).
struct SessionFingerprint {
  std::vector<std::string> programs;
  bool robust_type1 = false;
  bool robust_type2 = false;
  int64_t num_edges = 0;
  int64_t num_counterflow = 0;

  friend bool operator==(const SessionFingerprint&, const SessionFingerprint&) = default;
};

SessionFingerprint FingerprintOf(WorkloadSession& session) {
  SessionFingerprint fp;
  fp.programs = session.ProgramNames();
  CheckResult type2 = session.Check(Method::kTypeII);
  fp.robust_type2 = type2.robust;
  fp.num_edges = type2.num_edges;
  fp.num_counterflow = type2.num_counterflow_edges;
  fp.robust_type1 = session.Check(Method::kTypeI).robust;
  return fp;
}

class SessionSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjection::Global().Reset();
    store_ = std::make_unique<SnapshotStore>(dir_.path);
    ASSERT_TRUE(store_->Init().ok());
  }
  void TearDown() override { FaultInjection::Global().Reset(); }

  std::shared_ptr<WorkloadSession> NewSession(SessionManager& manager,
                                              const std::string& name) {
    return manager.GetOrCreate(name, AnalysisSettings::AttrDepFk());
  }

  TempDir dir_;
  std::unique_ptr<SnapshotStore> store_;
};

TEST_F(SessionSnapshotTest, RoundTripsThroughEveryJournaledMutation) {
  SessionManager manager(1);
  std::shared_ptr<WorkloadSession> session = NewSession(manager, "s");
  ASSERT_TRUE(session->LoadSql(SmallBankSql()).ok());
  ASSERT_TRUE(session->LoadSql(kTinySchemaSql).ok());
  ASSERT_TRUE(session->RemoveProgram("Balance").ok());
  ASSERT_TRUE(session->ReplaceProgramSql(kDepositV2Sql).ok());
  const SessionFingerprint original = FingerprintOf(*session);

  ASSERT_TRUE(TrySnapshotSession(*store_, *session).ok());

  SessionManager recovered_manager(1);
  RestoreReport report = RestoreAllSessions(*store_, recovered_manager);
  ASSERT_EQ(report.restored, std::vector<std::string>{"s"});
  EXPECT_TRUE(report.quarantined.empty());
  std::shared_ptr<WorkloadSession> recovered = recovered_manager.Find("s");
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(FingerprintOf(*recovered), original);

  // The restored session is not a read-only replica: identical further
  // mutations must keep it bit-identical to the original.
  ASSERT_TRUE(session->RemoveProgram("Deposit").ok());
  ASSERT_TRUE(recovered->RemoveProgram("Deposit").ok());
  EXPECT_EQ(FingerprintOf(*recovered), FingerprintOf(*session));
  EXPECT_EQ(recovered->replay_state().journal, session->replay_state().journal);
}

TEST_F(SessionSnapshotTest, BuiltinLoadsReplayByName) {
  SessionManager manager(1);
  std::shared_ptr<WorkloadSession> session = NewSession(manager, "builtin");
  std::optional<Workload> auction = MakeBuiltinWorkload("auction");
  ASSERT_TRUE(auction.has_value());
  ASSERT_TRUE(session->LoadWorkload(*auction, "auction").ok());
  const SessionFingerprint original = FingerprintOf(*session);
  ASSERT_TRUE(TrySnapshotSession(*store_, *session).ok());

  SessionManager recovered_manager(1);
  RestoreReport report = RestoreAllSessions(*store_, recovered_manager);
  ASSERT_EQ(report.restored, std::vector<std::string>{"builtin"});
  std::shared_ptr<WorkloadSession> recovered = recovered_manager.Find("builtin");
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(FingerprintOf(*recovered), original);
}

TEST_F(SessionSnapshotTest, PrebuiltBtpSessionsAreSkippedNotFailed) {
  SessionManager manager(1);
  std::shared_ptr<WorkloadSession> session = NewSession(manager, "prebuilt");
  // No builtin name: the session holds Btps with no recorded source.
  std::optional<Workload> smallbank = MakeBuiltinWorkload("smallbank");
  ASSERT_TRUE(smallbank.has_value());
  ASSERT_TRUE(session->LoadWorkload(*smallbank).ok());
  EXPECT_FALSE(session->replay_state().replayable);
  EXPECT_FALSE(EncodeSessionSnapshot(*session).ok());
  bool skipped = false;
  EXPECT_FALSE(TrySnapshotSession(*store_, *session, &skipped).ok());
  EXPECT_TRUE(skipped);
  EXPECT_TRUE(store_->ListKeys().empty());
}

TEST_F(SessionSnapshotTest, CrcCleanButUnreplayablePayloadIsQuarantined) {
  SessionManager manager(1);
  std::shared_ptr<WorkloadSession> session = NewSession(manager, "s");
  ASSERT_TRUE(session->LoadSql(kTinySchemaSql).ok());
  Result<std::string> payload = EncodeSessionSnapshot(*session);
  ASSERT_TRUE(payload.ok());
  // Corrupt the *semantics*, not the bytes: the recorded cursor state no
  // longer matches what replay produces. CRCs cannot catch this — the
  // post-replay verification must.
  Result<Json> doc = Json::Parse(payload.value());
  ASSERT_TRUE(doc.ok());
  Json tampered = doc.value();
  tampered.Set("label_counter", Json::Int(9999));
  ASSERT_TRUE(store_->Write(SnapshotStore::EncodeKey("s"), tampered.Dump()).ok());

  SessionManager recovered_manager(1);
  RestoreReport report = RestoreAllSessions(*store_, recovered_manager);
  EXPECT_TRUE(report.restored.empty());
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(recovered_manager.Find("s"), nullptr);  // no half-restored session
  EXPECT_TRUE(fs::exists(report.quarantined[0]));
}

TEST_F(SessionSnapshotTest, RestoreSkipsSessionsAlreadyLive) {
  SessionManager manager(1);
  std::shared_ptr<WorkloadSession> session = NewSession(manager, "s");
  ASSERT_TRUE(session->LoadSql(kTinySchemaSql).ok());
  ASSERT_TRUE(TrySnapshotSession(*store_, *session).ok());
  // The live session must win over its (now mutated) snapshot.
  ASSERT_TRUE(session->LoadSql(SmallBankSql()).ok());
  RestoreReport report = RestoreAllSessions(*store_, manager);
  EXPECT_TRUE(report.restored.empty());
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(manager.Find("s")->num_programs(), 6);
}

// ---------------------------------------------------------------------------
// The kill-at-every-fault-point matrix (the ISSUE's acceptance criterion).
//
// Protocol: put a good snapshot of state A on disk, mutate the session to
// state B, then attempt to snapshot B with one fault point armed to fire on
// its k-th hit — for every registered point, for every k until the attempt
// completes without the fault firing. After each attempt, recover into a
// fresh manager from a fresh store handle. The recovered world must be
// exactly one of: state A's verdicts, state B's verdicts, or a quarantined
// file with no session. Anything else — a wrong verdict, a crash, a
// half-restored session — fails the matrix.
TEST(FaultMatrixTest, EveryFaultPointEveryHitRestoresOrQuarantines) {
  FaultInjection::Global().Reset();

  // Reference fingerprints computed once, outside any faulting.
  SessionFingerprint state_a;
  SessionFingerprint state_b;
  {
    SessionManager reference(1);
    std::shared_ptr<WorkloadSession> session =
        reference.GetOrCreate("s", AnalysisSettings::AttrDepFk());
    ASSERT_TRUE(session->LoadSql(SmallBankSql()).ok());
    state_a = FingerprintOf(*session);
    ASSERT_TRUE(session->RemoveProgram("Balance").ok());
    state_b = FingerprintOf(*session);
  }
  ASSERT_NE(state_a, state_b);

  for (const char* point : RegisteredFaultPoints()) {
    bool completed_without_firing = false;
    for (int64_t fire_at = 1; fire_at <= 64 && !completed_without_firing; ++fire_at) {
      SCOPED_TRACE(std::string(point) + "@" + std::to_string(fire_at));
      TempDir dir;
      {
        SessionManager manager(1);
        std::shared_ptr<WorkloadSession> session =
            manager.GetOrCreate("s", AnalysisSettings::AttrDepFk());
        ASSERT_TRUE(session->LoadSql(SmallBankSql()).ok());
        SnapshotStore store(dir.path);
        ASSERT_TRUE(store.Init().ok());
        ASSERT_TRUE(TrySnapshotSession(store, *session).ok());  // good snapshot of A
        ASSERT_TRUE(session->RemoveProgram("Balance").ok());    // now at B

        FaultInjection::Global().Arm(point, fire_at);
        (void)TrySnapshotSession(store, *session);  // may fail; matrix judges recovery
        completed_without_firing = FaultInjection::Global().fired() == 0;
        FaultInjection::Global().Reset();
      }

      // Recover exactly as a restarted daemon would: new store handle, new
      // manager, scan-validate-restore.
      SnapshotStore recovered_store(dir.path);
      ASSERT_TRUE(recovered_store.Init().ok());
      SessionManager recovered_manager(1);
      RestoreReport report = RestoreAllSessions(recovered_store, recovered_manager);

      if (report.restored.empty()) {
        // Only acceptable as an explicit quarantine (a torn B overwrote A);
        // "file silently missing" would be a third outcome.
        EXPECT_FALSE(report.quarantined.empty());
        EXPECT_EQ(recovered_manager.Find("s"), nullptr);
      } else {
        ASSERT_EQ(report.restored, std::vector<std::string>{"s"});
        std::shared_ptr<WorkloadSession> recovered = recovered_manager.Find("s");
        ASSERT_NE(recovered, nullptr);
        const SessionFingerprint fp = FingerprintOf(*recovered);
        EXPECT_TRUE(fp == state_a || fp == state_b)
            << "recovered state matches neither pre- nor post-mutation reference";
      }
    }
    EXPECT_TRUE(completed_without_firing)
        << point << " still firing after 64 scheduled hits — snapshot path runaway?";
  }
  FaultInjection::Global().Reset();
}

}  // namespace
}  // namespace mvrc
