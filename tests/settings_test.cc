// AnalysisSettings::Parse/ToString — the single settings-string grammar
// shared by the NDJSON protocol and the CLI tools — must round-trip every
// granularity/FK/isolation combination and reject malformed strings.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "summary/dep_tables.h"

namespace mvrc {
namespace {

TEST(SettingsStringTest, RoundTripsEveryCombination) {
  for (const AnalysisSettings& base :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
        AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()}) {
    for (IsolationLevel level : {IsolationLevel::kMvrc, IsolationLevel::kRc}) {
      const AnalysisSettings settings = base.WithIsolation(level);
      Result<AnalysisSettings> parsed = AnalysisSettings::Parse(settings.ToString());
      ASSERT_TRUE(parsed.ok()) << settings.ToString() << ": " << parsed.error();
      EXPECT_TRUE(parsed.value().SameAnalysis(settings)) << settings.ToString();
      EXPECT_EQ(parsed.value().ToString(), settings.ToString());
    }
  }
}

TEST(SettingsStringTest, CanonicalStringsAreBackwardCompatible) {
  // The pre-isolation protocol strings parse to the same settings as before,
  // and MVRC settings print without an isolation suffix.
  EXPECT_EQ(AnalysisSettings::AttrDepFk().ToString(), "attr+fk");
  EXPECT_EQ(AnalysisSettings::AttrDep().ToString(), "attr");
  EXPECT_EQ(AnalysisSettings::TupleDepFk().ToString(), "tpl+fk");
  EXPECT_EQ(AnalysisSettings::TupleDep().ToString(), "tpl");
  EXPECT_EQ(AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc).ToString(),
            "attr+fk+rc");
  EXPECT_EQ(AnalysisSettings::TupleDep().WithIsolation(IsolationLevel::kRc).ToString(),
            "tpl+rc");
}

TEST(SettingsStringTest, ParseAcceptsExplicitMvrc) {
  Result<AnalysisSettings> parsed = AnalysisSettings::Parse("attr+fk+mvrc");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().SameAnalysis(AnalysisSettings::AttrDepFk()));
}

TEST(SettingsStringTest, ParseReportsIsolationExplicitness) {
  // The protocol layers its own default isolation over strings that leave
  // it implicit; Parse is the single authority on which ones those are.
  bool explicit_isolation = true;
  ASSERT_TRUE(AnalysisSettings::Parse("attr+fk", &explicit_isolation).ok());
  EXPECT_FALSE(explicit_isolation);
  ASSERT_TRUE(AnalysisSettings::Parse("attr+fk+mvrc", &explicit_isolation).ok());
  EXPECT_TRUE(explicit_isolation);
  ASSERT_TRUE(AnalysisSettings::Parse("tpl+rc", &explicit_isolation).ok());
  EXPECT_TRUE(explicit_isolation);
  EXPECT_FALSE(AnalysisSettings::Parse("tpl+xx", &explicit_isolation).ok());
  EXPECT_FALSE(explicit_isolation);  // reset on error paths too
}

TEST(SettingsStringTest, ParseRejectsMalformedStrings) {
  for (const std::string& bad :
       {"", "+", "fk", "attr+", "attr++fk", "attr+rc+fk", "attr+fk+xx", "attr+fk+rc+fk",
        "ATTR", "tpl+FK", "attr +fk", "attr+fk "}) {
    Result<AnalysisSettings> parsed = AnalysisSettings::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "\"" << bad << "\" unexpectedly parsed";
    if (!parsed.ok()) {
      EXPECT_NE(parsed.error().find("unknown settings"), std::string::npos);
    }
  }
}

TEST(SettingsStringTest, DisplayNamesCarryIsolationSuffix) {
  EXPECT_STREQ(AnalysisSettings::AttrDepFk().name(), "attr dep + FK");
  EXPECT_STREQ(AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc).name(),
               "attr dep + FK @ rc");
  EXPECT_STREQ(AnalysisSettings::TupleDep().WithIsolation(IsolationLevel::kRc).name(),
               "tpl dep @ rc");
}

TEST(SettingsStringTest, ThreadsAndIsolationAreOrthogonal) {
  const AnalysisSettings settings =
      AnalysisSettings::AttrDep().WithThreads(8).WithIsolation(IsolationLevel::kRc);
  EXPECT_EQ(settings.num_threads, 8);
  EXPECT_EQ(settings.isolation, IsolationLevel::kRc);
  EXPECT_EQ(settings.granularity, Granularity::kAttribute);
  // num_threads is an execution knob: not encoded, not compared.
  EXPECT_EQ(settings.ToString(), "attr+rc");
  EXPECT_TRUE(settings.SameAnalysis(settings.WithThreads(1)));
  EXPECT_FALSE(settings.SameAnalysis(settings.WithIsolation(IsolationLevel::kMvrc)));
}

}  // namespace
}  // namespace mvrc
