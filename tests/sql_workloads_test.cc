// Equivalence of the SQL-derived benchmark workloads with the hand-built
// ones: statement tables match Figures 2/10/17, summary graphs coincide
// edge-for-edge, and the robust-subset analysis is identical. This is the
// paper's claim (i) of §1: summary graphs can be constructed automatically
// from program text.

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "robust/subsets.h"
#include "sql/analyzer.h"
#include "summary/build_summary.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/sql_texts.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

Workload MustParse(const char* source) {
  Result<Workload> result = ParseWorkloadSql(source);
  EXPECT_TRUE(result.ok()) << result.error();
  return std::move(result).value();
}

const Btp& ProgramByName(const Workload& workload, const std::string& name) {
  for (const Btp& program : workload.programs) {
    if (program.name() == name) return program;
  }
  ADD_FAILURE() << "program " << name << " not found";
  return workload.programs.front();
}

// Compares the statement tables of two same-named programs (label, type,
// relation name, attribute sets by name).
void ExpectSameStatements(const Workload& expected_workload, const Btp& expected,
                          const Workload& actual_workload, const Btp& actual) {
  ASSERT_EQ(expected.num_statements(), actual.num_statements()) << expected.name();
  for (StmtId q = 0; q < expected.num_statements(); ++q) {
    EXPECT_EQ(expected.statement(q).ToDebugString(expected_workload.schema),
              actual.statement(q).ToDebugString(actual_workload.schema))
        << expected.name() << " statement " << q;
  }
}

// A summary graph as a multiset of readable edge strings (program names and
// statement labels are aligned across the two workload constructions).
std::multiset<std::string> EdgeStrings(const SummaryGraph& graph) {
  std::multiset<std::string> out;
  for (const SummaryEdge& edge : graph.edges()) {
    out.insert(graph.DescribeEdge(edge));
  }
  return out;
}

class SqlWorkloadEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, Workload (*)(),
                                                 const char* (*)()>> {};

TEST_P(SqlWorkloadEquivalence, StatementTablesMatch) {
  Workload built = std::get<1>(GetParam())();
  Workload parsed = MustParse(std::get<2>(GetParam())());
  ASSERT_EQ(built.programs.size(), parsed.programs.size());
  for (const Btp& program : built.programs) {
    ExpectSameStatements(built, program, parsed,
                         ProgramByName(parsed, program.name()));
  }
}

TEST_P(SqlWorkloadEquivalence, SummaryGraphsCoincide) {
  Workload built = std::get<1>(GetParam())();
  Workload parsed = MustParse(std::get<2>(GetParam())());
  for (AnalysisSettings settings :
       {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
        AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()}) {
    SummaryGraph built_graph = BuildSummaryGraph(built.programs, settings);
    SummaryGraph parsed_graph = BuildSummaryGraph(parsed.programs, settings);
    EXPECT_EQ(EdgeStrings(built_graph), EdgeStrings(parsed_graph)) << settings.name();
  }
}

TEST_P(SqlWorkloadEquivalence, RobustSubsetsCoincide) {
  Workload built = std::get<1>(GetParam())();
  Workload parsed = MustParse(std::get<2>(GetParam())());
  // Align parsed program order to the built one before mask comparison.
  std::vector<Btp> aligned;
  for (const Btp& program : built.programs) {
    aligned.push_back(ProgramByName(parsed, program.name()));
  }
  for (Method method : {Method::kTypeI, Method::kTypeII}) {
    for (AnalysisSettings settings :
         {AnalysisSettings::AttrDep(), AnalysisSettings::AttrDepFk()}) {
      SubsetReport built_report = AnalyzeSubsets(built.programs, settings, method);
      SubsetReport parsed_report = AnalyzeSubsets(aligned, settings, method);
      EXPECT_EQ(built_report.robust_masks, parsed_report.robust_masks)
          << settings.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, SqlWorkloadEquivalence,
    ::testing::Values(std::make_tuple("Auction", &MakeAuction, &AuctionSql),
                      std::make_tuple("SmallBank", &MakeSmallBank, &SmallBankSql),
                      std::make_tuple("Tpcc", &MakeTpcc, &TpccSql)),
    [](const ::testing::TestParamInfo<SqlWorkloadEquivalence::ParamType>& info) {
      return std::get<0>(info.param);
    });

TEST(SqlWorkloadDetails, AuctionFigure2SpotChecks) {
  Workload parsed = MustParse(AuctionSql());
  const Btp& find_bids = ProgramByName(parsed, "FindBids");
  EXPECT_EQ(find_bids.statement(0).ToDebugString(parsed.schema),
            "q1: key upd Buyer Read={calls} Write={calls}");
  EXPECT_EQ(find_bids.statement(1).ToDebugString(parsed.schema),
            "q2: pred sel Bids PRead={bid} Read={bid}");
  // "there is no foreign key constraint q1 = f1(q2) as q2 does not refer to
  // buyerId" (paper §5.1).
  EXPECT_TRUE(find_bids.fk_constraints().empty());

  const Btp& place_bid = ProgramByName(parsed, "PlaceBid");
  ASSERT_EQ(place_bid.fk_constraints().size(), 3u);
  EXPECT_FALSE(place_bid.IsLinear());
}

TEST(SqlWorkloadDetails, TpccFigure17SpotChecks) {
  Workload parsed = MustParse(TpccSql());
  const Btp& delivery = ProgramByName(parsed, "Delivery");
  EXPECT_EQ(delivery.statement(0).ToDebugString(parsed.schema),
            "q1: pred sel New_Order PRead={no_d_id, no_w_id} Read={no_o_id}");
  EXPECT_EQ(delivery.statement(4).ToDebugString(parsed.schema),
            "q5: pred upd Order_Line PRead={ol_o_id, ol_d_id, ol_w_id} Read={} "
            "Write={ol_delivery_d}");
  const Btp& payment = ProgramByName(parsed, "Payment");
  // q23's ReadSet excludes c_payment_cnt (set from a parameter) but includes
  // the RETURNING columns and the expression columns.
  const Statement& q23 = payment.statement(3);
  EXPECT_EQ(q23.label(), "q23");
  AttrSet read = *q23.read_set();
  RelationId customer = parsed.schema.FindRelation("Customer");
  EXPECT_FALSE(read.Contains(parsed.schema.relation(customer).FindAttr("c_payment_cnt")));
  EXPECT_TRUE(read.Contains(parsed.schema.relation(customer).FindAttr("c_balance")));
  EXPECT_TRUE(read.Contains(parsed.schema.relation(customer).FindAttr("c_since")));
  EXPECT_EQ(read.size(), 15);
  EXPECT_EQ(q23.write_set()->size(), 3);
}

TEST(SqlWorkloadDetails, GeneratedAuctionNMatchesBuilder) {
  // The generated Auction(n) SQL and the builder construction agree on
  // summary-graph size, counterflow count and the robustness verdict for
  // several n (edge labels differ: the builder reuses q1..q6 per item while
  // the SQL numbering is global, so counts rather than strings compare).
  for (int n : {1, 2, 3, 5}) {
    Workload built = MakeAuctionN(n);
    Workload parsed = MustParse(AuctionNSql(n).c_str());
    ASSERT_EQ(built.programs.size(), parsed.programs.size()) << n;
    for (AnalysisSettings settings :
         {AnalysisSettings::AttrDep(), AnalysisSettings::AttrDepFk()}) {
      SummaryGraph built_graph = BuildSummaryGraph(built.programs, settings);
      SummaryGraph parsed_graph = BuildSummaryGraph(parsed.programs, settings);
      EXPECT_EQ(built_graph.num_edges(), parsed_graph.num_edges()) << n;
      EXPECT_EQ(built_graph.num_counterflow_edges(),
                parsed_graph.num_counterflow_edges())
          << n;
      EXPECT_EQ(IsRobust(built_graph, Method::kTypeII),
                IsRobust(parsed_graph, Method::kTypeII))
          << n;
    }
  }
}

TEST(SqlWorkloadDetails, GeneratedAuctionNScalesThroughParser) {
  // Parse a large generated workload end to end (120 programs) and verify
  // the closed-form edge counts — a parser/analyzer stress test.
  constexpr int kN = 40;
  Workload parsed = MustParse(AuctionNSql(kN).c_str());
  SummaryGraph graph =
      BuildSummaryGraph(parsed.programs, AnalysisSettings::AttrDepFk());
  EXPECT_EQ(graph.num_programs(), 3 * kN);
  EXPECT_EQ(graph.num_edges(), 8 * kN + 9 * kN * kN);
  EXPECT_EQ(graph.num_counterflow_edges(), kN);
  EXPECT_TRUE(IsRobust(graph, Method::kTypeII));
}

TEST(SqlWorkloadDetails, TpccStockLevelIsReadOnlyPredicates) {
  Workload parsed = MustParse(TpccSql());
  const Btp& stock_level = ProgramByName(parsed, "StockLevel");
  EXPECT_EQ(stock_level.statement(1).type(), StatementType::kPredSelect);
  EXPECT_EQ(stock_level.statement(2).type(), StatementType::kPredSelect);
  EXPECT_EQ(*stock_level.statement(2).pread_set(),
            parsed.schema.MakeAttrSet(parsed.schema.FindRelation("Stock"),
                                      {"s_w_id", "s_quantity"}));
}

}  // namespace
}  // namespace mvrc
