// Tests for the observability layer (src/obs/): histogram bucket geometry
// and percentile accuracy against a brute-force oracle, striped counter and
// histogram merges under ThreadPool stress, the kill switch, the trace
// ring's overwrite-oldest policy, and the Chrome trace_event JSON shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace mvrc {
namespace {

// --- Histogram geometry.

TEST(HistogramTest, BoundariesStartAtZeroAndIncrease) {
  const std::vector<int64_t>& bounds = Histogram::BucketBoundaries();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds[0], 0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at boundary " << i;
  }
  // The table covers the documented range: values up to ~2^40 get their own
  // buckets, everything above shares the overflow bucket.
  EXPECT_GE(bounds.back(), int64_t{1} << 40);
}

TEST(HistogramTest, BucketIndexMapsBoundariesToTheirOwnBucket) {
  const std::vector<int64_t>& bounds = Histogram::BucketBoundaries();
  const int last = static_cast<int>(bounds.size()) - 1;
  for (int i = 0; i < static_cast<int>(bounds.size()); ++i) {
    EXPECT_EQ(Histogram::BucketIndex(bounds[i]), i) << "lower bound of bucket " << i;
    if (i < last) {
      EXPECT_EQ(Histogram::BucketIndex(bounds[i + 1] - 1), i)
          << "inclusive upper bound of bucket " << i;
    }
  }
  EXPECT_EQ(Histogram::BucketIndex(bounds.back() + 12345), last);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), last);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // One bucket per value below 4 (bucket width 1), so quantiles are exact.
  Histogram hist;
  for (int64_t v : {0, 1, 1, 2, 3, 3, 3}) hist.Record(v);
  Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 7);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 3);
  EXPECT_EQ(snap.Percentile(0), 0);
  EXPECT_EQ(snap.Percentile(50), 2);
  EXPECT_EQ(snap.Percentile(100), 3);
}

// Brute-force oracle for the documented rank: the ⌈p/100·count⌉-th smallest
// sample (1-based), clamped to the first sample for p = 0.
int64_t OraclePercentile(std::vector<int64_t> samples, double p) {
  std::sort(samples.begin(), samples.end());
  int64_t rank = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  if (rank < 1) rank = 1;
  if (rank > static_cast<int64_t>(samples.size())) rank = samples.size();
  return samples[rank - 1];
}

TEST(HistogramTest, PercentilesWithinBucketBoundOfOracle) {
  Histogram hist;
  std::vector<int64_t> samples;
  // Deterministic LCG spanning several octaves, plus exact small values.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int64_t value = static_cast<int64_t>((state >> 33) % 2000000);
    samples.push_back(value);
    hist.Record(value);
  }
  Histogram::Snapshot snap = hist.Snap();
  ASSERT_EQ(snap.count, static_cast<int64_t>(samples.size()));
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    const int64_t oracle = OraclePercentile(samples, p);
    const int64_t reported = snap.Percentile(p);
    EXPECT_GE(reported, oracle) << "p" << p;
    EXPECT_LE(reported, oracle + oracle / 4 + 1) << "p" << p;
  }
  EXPECT_EQ(snap.Percentile(100), *std::max_element(samples.begin(), samples.end()));
}

TEST(HistogramTest, SnapshotSumMinMaxMean) {
  Histogram hist;
  int64_t sum = 0;
  for (int64_t v = 10; v <= 1000; v += 37) {
    hist.Record(v);
    sum += v;
  }
  Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 10);
  EXPECT_EQ(snap.max, 972);
  EXPECT_DOUBLE_EQ(snap.Mean(), static_cast<double>(sum) / snap.count);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram hist;
  hist.Record(7);
  hist.Reset();
  Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.Percentile(50), 0);
}

// --- Striped merges under concurrency.

TEST(MetricsTest, CounterMergesStripesUnderThreadPoolStress) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("stress.counter");
  Histogram* hist = registry.histogram("stress.hist");
  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  {
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&] {
        for (int i = 0; i < kPerTask; ++i) {
          counter->Add(1);
          hist->Record(i);
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter->Value(), int64_t{kTasks} * kPerTask);
  Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, int64_t{kTasks} * kPerTask);
  EXPECT_EQ(snap.sum, int64_t{kTasks} * kPerTask * (kPerTask - 1) / 2);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, kPerTask - 1);
}

TEST(MetricsTest, KillSwitchMakesMutationsNoOps) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("switch.counter");
  Gauge* gauge = registry.gauge("switch.gauge");
  Histogram* hist = registry.histogram("switch.hist");
  ASSERT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  counter->Add(5);
  gauge->Set(9);
  hist->Record(123);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Snap().count, 0);
  counter->Add(5);
  EXPECT_EQ(counter->Value(), 5);
}

TEST(MetricsTest, GaugeSetAddValue) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("same.name");
  Counter* b = registry.counter("same.name");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.histogram("other.name"), nullptr);
}

TEST(MetricsTest, ToJsonShape) {
  MetricsRegistry registry;
  registry.counter("c.events")->Add(3);
  registry.gauge("g.level")->Set(-2);
  Histogram* hist = registry.histogram("h.latency_us");
  for (int64_t v : {5, 10, 20}) hist->Record(v);

  Json doc = registry.ToJson();
  const Json* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("c.events"), nullptr);
  EXPECT_EQ(counters->Find("c.events")->int_value(), 3);
  const Json* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("g.level")->int_value(), -2);
  const Json* hists = doc.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const Json* entry = hists->Find("h.latency_us");
  ASSERT_NE(entry, nullptr);
  for (const char* key : {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}) {
    EXPECT_NE(entry->Find(key), nullptr) << key;
  }
  EXPECT_EQ(entry->Find("count")->int_value(), 3);
  EXPECT_EQ(entry->Find("sum")->int_value(), 35);

  registry.ResetAll();
  EXPECT_EQ(registry.counter("c.events")->Value(), 0);
  EXPECT_EQ(registry.histogram("h.latency_us")->Snap().count, 0);
}

// --- Trace ring + Chrome JSON.

TraceEvent MakeEvent(int i) {
  TraceEvent event;
  event.name = "ev" + std::to_string(i);
  event.tid = 1;
  event.ts_us = i;
  event.dur_us = 1;
  return event;
}

TEST(TraceTest, RingKeepsNewestAndCountsDrops) {
  TraceBuffer buffer;
  buffer.Start(TraceBuffer::kMinCapacity);  // 16 slots
  for (int i = 0; i < 20; ++i) buffer.Record(MakeEvent(i));
  buffer.Stop();
  EXPECT_EQ(buffer.recorded(), 20);
  EXPECT_EQ(buffer.dropped(), 4);

  Json doc = buffer.ToChromeJson();
  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 16);
  // Oldest-first, with the first four events overwritten.
  EXPECT_EQ(events->at(0).Find("name")->string_value(), "ev4");
  EXPECT_EQ(events->at(15).Find("name")->string_value(), "ev19");
}

TEST(TraceTest, RecordIsNoOpWhileDisabled) {
  TraceBuffer buffer;
  buffer.Record(MakeEvent(0));
  EXPECT_EQ(buffer.recorded(), 0);
  buffer.Start(64);
  buffer.Record(MakeEvent(1));
  buffer.Stop();
  buffer.Record(MakeEvent(2));
  EXPECT_EQ(buffer.recorded(), 1);
  EXPECT_EQ(buffer.dropped(), 0);
}

TEST(TraceTest, StartClampsCapacityAndClears) {
  TraceBuffer buffer;
  buffer.Start(1);  // clamped up to kMinCapacity
  for (int i = 0; i < 2 * static_cast<int>(TraceBuffer::kMinCapacity); ++i) {
    buffer.Record(MakeEvent(i));
  }
  EXPECT_EQ(buffer.dropped(), static_cast<int64_t>(TraceBuffer::kMinCapacity));
  buffer.Start(64);  // restart clears recorded/dropped and the ring
  EXPECT_EQ(buffer.recorded(), 0);
  EXPECT_EQ(buffer.dropped(), 0);
  EXPECT_EQ(buffer.ToChromeJson().Find("traceEvents")->size(), 0);
  buffer.Stop();
}

TEST(TraceTest, ChromeJsonRoundTripsWithSchemaFields) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Start(256);
  {
    TraceSpan span("test/outer", "k=v");
    span.AppendArgs("result=ok");
    TraceSpan inner("test/inner");
  }
  buffer.Stop();
  ASSERT_GE(buffer.recorded(), 2);

  // Round-trip through the parser: the dumped text must be valid JSON with
  // the Chrome trace_event schema fields on every event.
  Result<Json> parsed = Json::Parse(buffer.ToChromeJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  Json doc = std::move(parsed).value();
  EXPECT_EQ(doc.Find("displayTimeUnit")->string_value(), "ms");
  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_outer = false;
  for (int i = 0; i < events->size(); ++i) {
    const Json& event = events->at(i);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      ASSERT_NE(event.Find(key), nullptr) << key;
    }
    EXPECT_EQ(event.Find("cat")->string_value(), "mvrc");
    EXPECT_EQ(event.Find("ph")->string_value(), "X");
    EXPECT_EQ(event.Find("pid")->int_value(), 1);
    EXPECT_GE(event.Find("ts")->int_value(), 0);
    if (event.Find("name")->string_value() == "test/outer") {
      saw_outer = true;
      const Json* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      const std::string detail = args->Find("detail")->string_value();
      EXPECT_NE(detail.find("k=v"), std::string::npos);
      EXPECT_NE(detail.find("result=ok"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_outer);
}

TEST(TraceTest, SpanIsInactiveWhenTracingDisabled) {
  TraceBuffer& buffer = TraceBuffer::Global();
  ASSERT_FALSE(buffer.enabled());
  const int64_t before = buffer.recorded();
  {
    TraceSpan span("test/ignored");
    span.AppendArgs("unused=1");
  }
  EXPECT_EQ(buffer.recorded(), before);
}

}  // namespace
}  // namespace mvrc
