// The incremental analysis service must be observably identical to
// from-scratch analysis: after every add/remove/replace, a session's
// materialized summary graph, its robustness verdicts, and its subset
// reports equal what BuildSummaryGraph / IsRobust / AnalyzeSubsets compute
// on the same program set from nothing. Also covers the verdict cache's
// cross-mutation reuse, the SessionManager registry, and the oversized-
// workload error path of TryAnalyzeSubsets.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "persist/session_snapshot.h"
#include "persist/snapshot_store.h"
#include "service/admission.h"
#include "util/fault_injection.h"
#include "robust/core_search.h"
#include "robust/subsets.h"
#include "service/protocol.h"
#include "service/session_manager.h"
#include "service/workload_session.h"
#include "sql/analyzer.h"
#include "summary/build_summary.h"
#include "util/json.h"
#include "workloads/auction.h"
#include "workloads/policy_demo.h"
#include "workloads/smallbank.h"
#include "workloads/sql_texts.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

Workload SchemaOnly(const Workload& workload) {
  Workload empty;
  empty.name = workload.name;
  empty.schema = workload.schema;
  return empty;
}

// Asserts the session's incremental state is bit-identical to a from-scratch
// analysis of the same program set.
void ExpectMatchesScratch(WorkloadSession& session, const std::string& context) {
  SCOPED_TRACE(context);
  const std::vector<Btp> programs = session.Programs();
  const AnalysisSettings settings = session.settings();

  SummaryGraph scratch = BuildSummaryGraph(UnfoldAtMost2(programs), settings);
  SummaryGraph incremental = session.Graph();
  ASSERT_EQ(incremental.num_programs(), scratch.num_programs());
  for (int i = 0; i < scratch.num_programs(); ++i) {
    EXPECT_EQ(incremental.program(i).name(), scratch.program(i).name()) << "LTP " << i;
    EXPECT_EQ(incremental.program(i).size(), scratch.program(i).size()) << "LTP " << i;
  }
  EXPECT_EQ(incremental.edges(), scratch.edges());

  for (Method method : {Method::kTypeI, Method::kTypeII}) {
    EXPECT_EQ(session.Check(method).robust, IsRobust(scratch, method, settings.policy()));
  }

  if (!programs.empty() && static_cast<int>(programs.size()) <= kMaxSubsetPrograms) {
    for (Method method : {Method::kTypeI, Method::kTypeII}) {
      SubsetReport reference = AnalyzeSubsets(programs, settings, method);
      Result<SubsetReport> report = session.Subsets(method);
      ASSERT_TRUE(report.ok()) << report.error();
      EXPECT_EQ(report.value().num_programs, reference.num_programs);
      EXPECT_EQ(report.value().robust_masks, reference.robust_masks);
      EXPECT_EQ(report.value().maximal_masks, reference.maximal_masks);
    }
  }
}

TEST(WorkloadSessionTest, IncrementalAddMatchesScratchOnEveryWorkload) {
  for (const Workload& workload : {MakeSmallBank(), MakeTpcc(), MakeAuction()}) {
    WorkloadSession session(workload.name, AnalysisSettings::AttrDepFk());
    ASSERT_TRUE(session.LoadWorkload(SchemaOnly(workload)).ok());
    for (const Btp& program : workload.programs) {
      ASSERT_TRUE(session.AddProgram(program).ok());
      ExpectMatchesScratch(session, workload.name + " after add " + program.name());
    }
  }
}

TEST(WorkloadSessionTest, RemoveMatchesScratch) {
  Workload workload = MakeTpcc();
  WorkloadSession session(workload.name, AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadWorkload(workload).ok());
  ExpectMatchesScratch(session, "full TPC-C");

  // Remove from the middle, then from the front, down to one program.
  std::vector<std::string> order = {"Payment", "Delivery", "StockLevel", "NewOrder"};
  for (const std::string& name : order) {
    ASSERT_TRUE(session.RemoveProgram(name).ok());
    ExpectMatchesScratch(session, "TPC-C after remove " + name);
  }
  EXPECT_EQ(session.num_programs(), 1);

  // Removing to empty and re-adding still matches.
  ASSERT_TRUE(session.RemoveProgram(session.ProgramNames()[0]).ok());
  EXPECT_EQ(session.num_programs(), 0);
  ASSERT_TRUE(session.AddProgram(workload.programs[0]).ok());
  ExpectMatchesScratch(session, "TPC-C re-added " + workload.programs[0].name());
}

TEST(WorkloadSessionTest, RemoveThenAddBackMatchesScratch) {
  Workload workload = MakeAuction();
  WorkloadSession session(workload.name, AnalysisSettings::TupleDep());
  ASSERT_TRUE(session.LoadWorkload(workload).ok());
  for (const Btp& program : workload.programs) {
    ASSERT_TRUE(session.RemoveProgram(program.name()).ok());
    ExpectMatchesScratch(session, "auction without " + program.name());
    ASSERT_TRUE(session.AddProgram(program).ok());
    ExpectMatchesScratch(session, "auction restored " + program.name());
  }
}

TEST(WorkloadSessionTest, ReplaceMatchesScratchAndDetectsRealChanges) {
  WorkloadSession session("auction", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadSql(AuctionSql()).ok());
  EXPECT_FALSE(session.Check().from_cache);  // first check computes the verdict
  EXPECT_TRUE(session.Check().from_cache);   // the second is served from cache
  ExpectMatchesScratch(session, "auction via SQL");

  // Replacing FindBids with a key-based read changes its incident edges:
  // the verdict cache entries involving it must be invalidated.
  ASSERT_TRUE(session
                  .ReplaceProgramSql("PROGRAM FindBids(:B, :T):\n"
                                     "  UPDATE Buyer SET calls = calls + 1 WHERE id = :B;\n"
                                     "  SELECT bid FROM Bids WHERE buyerId = :B;\n"
                                     "COMMIT;\n")
                  .ok());
  EXPECT_FALSE(session.Check().from_cache);
  ExpectMatchesScratch(session, "auction with key-based FindBids");
}

TEST(WorkloadSessionTest, ReplaceChangingStatementTypesInvalidatesCache) {
  // A lone SELECT admits no summary edges whichever way it reads, so the
  // incident cells compare equal across this replace — but Algorithm 2
  // reads statement types (adjacent-pair condition), so flipping the
  // predicate select to a key select must still advance the revision.
  WorkloadSession session("t", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session
                  .LoadSql("TABLE U(c, d, PRIMARY KEY(c));\n"
                           "PROGRAM Q(:y):\n  SELECT d FROM U WHERE d >= :y;\nCOMMIT;\n")
                  .ok());
  EXPECT_FALSE(session.Check().from_cache);
  EXPECT_TRUE(session.Check().from_cache);
  ASSERT_TRUE(
      session.ReplaceProgramSql("PROGRAM Q(:y):\n  SELECT d FROM U WHERE c = :y;\nCOMMIT;\n")
          .ok());
  EXPECT_FALSE(session.Check().from_cache);
  ExpectMatchesScratch(session, "Q flipped from pred to key select");
}

TEST(WorkloadSessionTest, ReplaceWithEquivalentProgramKeepsCachedVerdicts) {
  Workload workload = MakeTpcc();
  WorkloadSession session(workload.name, AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadWorkload(workload).ok());
  ASSERT_TRUE(session.Subsets(Method::kTypeII).ok());
  const SessionStats before = session.stats();

  // Replacing a program with itself admits identical incident edges, so the
  // revision — and every cached verdict — survives: the re-sweep runs zero
  // detector invocations.
  ASSERT_TRUE(session.ReplaceProgram(workload.programs[2]).ok());
  EXPECT_TRUE(session.Check().from_cache);
  ASSERT_TRUE(session.Subsets(Method::kTypeII).ok());
  EXPECT_EQ(session.stats().detector_runs, before.detector_runs);
  ExpectMatchesScratch(session, "TPC-C after no-op replace");
}

TEST(WorkloadSessionTest, AddInvalidatesOnlyMasksContainingTheNewProgram) {
  Workload workload = MakeAuctionN(4);  // 8 programs
  WorkloadSession session(workload.name, AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadWorkload(SchemaOnly(workload)).ok());
  for (size_t i = 0; i + 1 < workload.programs.size(); ++i) {
    ASSERT_TRUE(session.AddProgram(workload.programs[i]).ok());
  }
  ASSERT_TRUE(session.Subsets(Method::kTypeII).ok());
  const SessionStats before = session.stats();

  ASSERT_TRUE(session.AddProgram(workload.programs.back()).ok());
  ASSERT_TRUE(session.Subsets(Method::kTypeII).ok());
  const SessionStats after = session.stats();

  // 7 programs were already swept; only the 2^7 masks containing the new
  // program may need the detector.
  EXPECT_LE(after.detector_runs - before.detector_runs, int64_t{1} << 7);
  // And the incremental graph maintenance did strictly less dep-table work
  // than the (2 * 7 + 1 cells vs 8^2 cells) from-scratch build would.
  EXPECT_LT(after.cells_computed - before.cells_computed, int64_t{8 * 8});
  ExpectMatchesScratch(session, "auction(4) fully built");
}

TEST(WorkloadSessionTest, SqlSessionMatchesSingleFileParse) {
  WorkloadSession session("smallbank", AnalysisSettings::AttrDepFk());
  Result<std::vector<std::string>> names = session.LoadSql(SmallBankSql());
  ASSERT_TRUE(names.ok()) << names.error();
  EXPECT_EQ(names.value().size(), 5u);

  Result<Workload> scratch = ParseWorkloadSql(SmallBankSql());
  ASSERT_TRUE(scratch.ok());
  SummaryGraph reference =
      BuildSummaryGraph(scratch.value().programs, AnalysisSettings::AttrDepFk());
  EXPECT_EQ(session.Graph().edges(), reference.edges());

  // Add a new program incrementally against the already-loaded schema; the
  // statement labels continue after the file's (q1..q15 for SmallBank).
  ASSERT_TRUE(session
                  .LoadSql("PROGRAM AuditSavings(:C):\n"
                           "  SELECT Balance FROM Savings WHERE CustomerId = :C;\n"
                           "COMMIT;\n")
                  .ok());
  ExpectMatchesScratch(session, "smallbank + AuditSavings");
  EXPECT_EQ(session.num_programs(), 6);
}

TEST(WorkloadSessionTest, MutationErrorsLeaveSessionUntouched) {
  Workload workload = MakeSmallBank();
  WorkloadSession session("sb", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadWorkload(workload).ok());
  const SummaryGraph before = session.Graph();

  EXPECT_FALSE(session.AddProgram(workload.programs[0]).ok());          // duplicate
  EXPECT_FALSE(session.RemoveProgram("NoSuchProgram").ok());            // unknown
  EXPECT_FALSE(session.LoadWorkload(workload).ok());                    // not empty
  EXPECT_FALSE(session.LoadSql("PROGRAM Balance(:N): COMMIT;").ok());   // name clash
  EXPECT_FALSE(session.ReplaceProgramSql("TABLE X(a, PRIMARY KEY(a));").ok());
  Btp unknown("NoSuchProgram");
  EXPECT_FALSE(session.ReplaceProgram(unknown).ok());

  // A failed replace must not commit its schema extension either: the same
  // TABLE can still be declared by a later (successful) load.
  EXPECT_FALSE(session
                   .ReplaceProgramSql("TABLE Audit(id, PRIMARY KEY(id));\n"
                                      "PROGRAM NoSuchProgram(:x):\n"
                                      "  SELECT id FROM Audit WHERE id = :x;\nCOMMIT;\n")
                   .ok());
  EXPECT_TRUE(session
                  .LoadSql("TABLE Audit(id, PRIMARY KEY(id));\n"
                           "PROGRAM AuditRead(:x):\n"
                           "  SELECT id FROM Audit WHERE id = :x;\nCOMMIT;\n")
                  .ok());
  ASSERT_TRUE(session.RemoveProgram("AuditRead").ok());

  EXPECT_EQ(session.Graph().edges(), before.edges());
  EXPECT_EQ(session.num_programs(), 5);
}

TEST(WorkloadSessionTest, ParallelSessionMatchesSerial) {
  ThreadPool pool(4);
  Workload workload = MakeAuctionN(3);
  WorkloadSession parallel("p", AnalysisSettings::AttrDepFk(), &pool);
  WorkloadSession serial("s", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(parallel.LoadWorkload(workload).ok());
  ASSERT_TRUE(serial.LoadWorkload(workload).ok());
  EXPECT_EQ(parallel.Graph().edges(), serial.Graph().edges());
  Result<SubsetReport> parallel_report = parallel.Subsets(Method::kTypeII);
  Result<SubsetReport> serial_report = serial.Subsets(Method::kTypeII);
  ASSERT_TRUE(parallel_report.ok());
  ASSERT_TRUE(serial_report.ok());
  EXPECT_EQ(parallel_report.value().robust_masks, serial_report.value().robust_masks);
  EXPECT_EQ(parallel_report.value().maximal_masks, serial_report.value().maximal_masks);
  ExpectMatchesScratch(parallel, "pooled auction(3) session");
}

// Generates n trivial single-select programs over one relation.
std::string ManyProgramsSql(int n) {
  std::ostringstream os;
  os << "TABLE T(a, b, PRIMARY KEY(a));\n";
  for (int i = 1; i <= n; ++i) {
    os << "PROGRAM P" << i << "(:x):\n  SELECT b FROM T WHERE a = :x;\nCOMMIT;\n";
  }
  return os.str();
}

TEST(WorkloadSessionTest, OversizedSubsetSweepTakesTheCoreGuidedSearch) {
  WorkloadSession session("big", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadSql(ManyProgramsSql(kMaxSubsetPrograms + 1)).ok());
  // Past the exhaustive cap the session switches regimes instead of failing:
  // 21 read-only programs are fully robust, so the one maximal set is the
  // whole workload and no cores exist.
  Result<SubsetReport> report = session.Subsets(Method::kTypeII);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().from_core_search);
  EXPECT_TRUE(report.value().cores.empty());
  ASSERT_EQ(report.value().maximal_sets.size(), 1u);
  EXPECT_EQ(report.value().maximal_sets[0],
            ProgramSet::Full(kMaxSubsetPrograms + 1));

  // The non-subset paths keep working beyond the subset bound.
  EXPECT_TRUE(session.Check().robust);

  // The library-level exhaustive entry point still rejects the workload —
  // with a message that states the cap and names the core-guided successor.
  Result<SubsetReport> direct =
      TryAnalyzeSubsets(session.Programs(), session.settings(), Method::kTypeII);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.error().find("1.." + std::to_string(kMaxSubsetPrograms)),
            std::string::npos);
  EXPECT_NE(direct.error().find("got 21"), std::string::npos);
  EXPECT_NE(direct.error().find("core-guided"), std::string::npos);
  EXPECT_NE(direct.error().find("AnalyzeSubsetsCoreGuided"), std::string::npos);
  EXPECT_NE(direct.error().find(std::to_string(kMaxCoreSearchPrograms)),
            std::string::npos);
}

TEST(WorkloadSessionTest, SubsetsBeyondCoreSearchCapIsARequestErrorNotAnAbort) {
  WorkloadSession session("huge", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadSql(ManyProgramsSql(kMaxCoreSearchPrograms + 1)).ok());
  Result<SubsetReport> report = session.Subsets(Method::kTypeII);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().find(std::to_string(kMaxCoreSearchPrograms)), std::string::npos);
  EXPECT_NE(report.error().find("got " + std::to_string(kMaxCoreSearchPrograms + 1)),
            std::string::npos);
  // The non-subset paths keep working past both bounds.
  EXPECT_TRUE(session.Check().robust);
}

TEST(TryAnalyzeSubsetsTest, SharedPoolMatchesOwnedPool) {
  Workload workload = MakeSmallBank();
  SubsetReport owned =
      AnalyzeSubsets(workload.programs, AnalysisSettings::AttrDepFk().WithThreads(4),
                     Method::kTypeII);
  ThreadPool pool(4);
  Result<SubsetReport> shared = TryAnalyzeSubsets(
      workload.programs, AnalysisSettings::AttrDepFk(), Method::kTypeII, &pool);
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared.value().num_threads, 4);
  EXPECT_EQ(shared.value().robust_masks, owned.robust_masks);
  EXPECT_EQ(shared.value().maximal_masks, owned.maximal_masks);
}

TEST(SessionManagerTest, GetOrCreateFindDrop) {
  SessionManager manager(1);
  EXPECT_EQ(manager.num_threads(), 1);
  EXPECT_EQ(manager.pool(), nullptr);

  auto a = manager.GetOrCreate("a", AnalysisSettings::AttrDepFk());
  auto a_again = manager.GetOrCreate("a", AnalysisSettings::TupleDep());
  EXPECT_EQ(a.get(), a_again.get());
  // Creation settings stick; later GetOrCreate settings are ignored.
  EXPECT_EQ(std::string(a_again->settings().name()), "attr dep + FK");

  EXPECT_EQ(manager.Find("missing"), nullptr);
  manager.GetOrCreate("b", AnalysisSettings::AttrDepFk());
  EXPECT_EQ(manager.SessionNames(), (std::vector<std::string>{"a", "b"}));

  EXPECT_TRUE(manager.Drop("a"));
  EXPECT_FALSE(manager.Drop("a"));
  EXPECT_EQ(manager.SessionNames(), (std::vector<std::string>{"b"}));
}

TEST(SessionManagerTest, SharedPoolAcrossSessionsAndThreads) {
  SessionManager manager(4);
  EXPECT_EQ(manager.num_threads(), 4);
  ASSERT_NE(manager.pool(), nullptr);

  // Concurrent GetOrCreate on the same name resolves to one session.
  std::vector<std::shared_ptr<WorkloadSession>> seen(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&manager, &seen, t] {
      seen[t] = manager.GetOrCreate("shared", AnalysisSettings::AttrDepFk());
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<WorkloadSession*> distinct;
  for (const auto& session : seen) distinct.insert(session.get());
  EXPECT_EQ(distinct.size(), 1u);

  // Sessions created by the manager analyze on the shared pool and still
  // match from-scratch results.
  auto session = manager.GetOrCreate("sb", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session->LoadWorkload(MakeSmallBank()).ok());
  ExpectMatchesScratch(*session, "manager-owned smallbank session");
}

// --- Isolation-policy plumbing through sessions and the protocol. ---------

// An RC session's incremental state stays bit-identical to from-scratch RC
// analysis across mutations (the same contract the MVRC sessions have).
TEST(WorkloadSessionTest, RcSessionMatchesScratchAcrossMutations) {
  Workload demo = MakeIsolationDemo();
  WorkloadSession session(
      "rc", AnalysisSettings::AttrDepFk().WithIsolation(IsolationLevel::kRc));
  ASSERT_TRUE(session.LoadWorkload(SchemaOnly(demo)).ok());
  for (size_t i = 0; i < demo.programs.size(); ++i) {
    ASSERT_TRUE(session.AddProgram(demo.programs[i]).ok());
    ExpectMatchesScratch(session, "rc demo after add " + demo.programs[i].name());
  }
  EXPECT_TRUE(session.Check().robust);  // robust under lock-based RC...
  ASSERT_TRUE(session.RemoveProgram("Refresh").ok());
  ExpectMatchesScratch(session, "rc demo after remove");

  WorkloadSession mvrc_session("mvrc", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(mvrc_session.LoadWorkload(demo).ok());
  EXPECT_FALSE(mvrc_session.Check().robust);  // ...but not under MVRC.
}

Json Request(SessionManager& manager, const std::string& line,
             const ProtocolOptions& options = {}) {
  Result<Json> parsed = Json::Parse(HandleRequestLine(manager, line, options));
  EXPECT_TRUE(parsed.ok());
  return parsed.ok() ? parsed.value() : Json::Object();
}

TEST(ProtocolIsolationTest, UnknownSettingsAndIsolationAreErrors) {
  SessionManager manager;
  Json bad_settings = Request(
      manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank","settings":"attr+si"})");
  EXPECT_FALSE(bad_settings.GetBool("ok", true));
  EXPECT_NE(bad_settings.GetString("error").find("unknown settings"), std::string::npos);

  Json bad_isolation = Request(
      manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank","isolation":"si"})");
  EXPECT_FALSE(bad_isolation.GetBool("ok", true));
  EXPECT_NE(bad_isolation.GetString("error").find("unknown isolation"), std::string::npos);

  Json conflict = Request(manager,
                          R"({"cmd":"load_sql","session":"s","builtin":"smallbank",)"
                          R"("settings":"attr+fk+rc","isolation":"mvrc"})");
  EXPECT_FALSE(conflict.GetBool("ok", true));
  EXPECT_NE(conflict.GetString("error").find("conflicting isolation"), std::string::npos);

  // A failed create must not leak an empty session.
  Json stats = Request(manager, R"({"cmd":"stats"})");
  EXPECT_TRUE(stats.GetBool("ok", false));
  const Json* sessions = stats.Find("sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_EQ(sessions->size(), 0);
}

TEST(ProtocolIsolationTest, MutationsUnderDifferentIsolationAreRejected) {
  SessionManager manager;
  Json created = Request(
      manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank","isolation":"rc"})");
  ASSERT_TRUE(created.GetBool("ok", false));

  // Explicitly addressing the rc session as mvrc (either spelling) fails.
  Json mismatch = Request(
      manager,
      R"({"cmd":"add_program","session":"s","isolation":"mvrc","sql":"PROGRAM P(:x): COMMIT;"})");
  EXPECT_FALSE(mismatch.GetBool("ok", true));
  EXPECT_NE(mismatch.GetString("error").find("isolation"), std::string::npos);
  Json mismatch_settings = Request(manager,
                                   R"({"cmd":"load_sql","session":"s",)"
                                   R"("settings":"attr+fk+mvrc","sql":"PROGRAM P(:x): COMMIT;"})");
  EXPECT_FALSE(mismatch_settings.GetBool("ok", true));

  // Different granularity/FK settings are rejected too.
  Json granularity = Request(manager,
                             R"({"cmd":"load_sql","session":"s","settings":"tpl",)"
                             R"("sql":"PROGRAM P(:x): COMMIT;"})");
  EXPECT_FALSE(granularity.GetBool("ok", true));
  EXPECT_NE(granularity.GetString("error").find("settings"), std::string::npos);

  // Omitting isolation inherits the session's — no error, and the session
  // is unchanged by the failures above.
  Json stats = Request(manager, R"({"cmd":"stats","session":"s"})");
  ASSERT_TRUE(stats.GetBool("ok", false));
  EXPECT_EQ(stats.GetString("isolation"), "rc");
  EXPECT_EQ(stats.GetInt("programs_added", -1), 5);
}

TEST(ProtocolIsolationTest, RcAndMvrcSessionsAnswerDifferently) {
  const std::string demo_sql =
      "TABLE Gauge(id, flag, val, PRIMARY KEY(id));\n"
      "PROGRAM Monitor(:k):\n"
      "  SELECT val INTO :v FROM Gauge WHERE id = :k;\n"
      "COMMIT;\n"
      "PROGRAM Refresh(:f, :v):\n"
      "  UPDATE Gauge SET val = :v WHERE flag = :f;\n"
      "COMMIT;\n";
  SessionManager manager;
  Json mvrc_load = Request(manager, std::string(R"({"cmd":"load_sql","session":"m","sql":)") +
                                        Json::Str(demo_sql).Dump() + "}");
  ASSERT_TRUE(mvrc_load.GetBool("ok", false)) << mvrc_load.GetString("error");
  Json rc_load =
      Request(manager, std::string(R"({"cmd":"load_sql","session":"r","isolation":"rc","sql":)") +
                           Json::Str(demo_sql).Dump() + "}");
  ASSERT_TRUE(rc_load.GetBool("ok", false)) << rc_load.GetString("error");

  Json mvrc_check = Request(manager, R"({"cmd":"check","session":"m"})");
  ASSERT_TRUE(mvrc_check.GetBool("ok", false));
  EXPECT_FALSE(mvrc_check.GetBool("robust", true));
  EXPECT_FALSE(mvrc_check.GetString("witness").empty());

  Json rc_check = Request(manager, R"({"cmd":"check","session":"r"})");
  ASSERT_TRUE(rc_check.GetBool("ok", false));
  EXPECT_TRUE(rc_check.GetBool("robust", false));

  // The subsets sweep under rc reports every subset robust; under mvrc the
  // pair is rejected.
  Json rc_subsets = Request(manager, R"({"cmd":"subsets","session":"r"})");
  ASSERT_TRUE(rc_subsets.GetBool("ok", false));
  EXPECT_EQ(rc_subsets.GetInt("num_robust_subsets", -1), 3);
  Json mvrc_subsets = Request(manager, R"({"cmd":"subsets","session":"m"})");
  ASSERT_TRUE(mvrc_subsets.GetBool("ok", false));
  EXPECT_EQ(mvrc_subsets.GetInt("num_robust_subsets", -1), 2);
}

TEST(ProtocolTest, OversizedSubsetsResponseCarriesTheCoreGuidedLattice) {
  // One genuinely conflicting pair (the Gauge demo workload) plus 19 trivial
  // read-only programs pushes the session past kMaxSubsetPrograms, so the
  // subsets command must answer from the core-guided search: the response
  // names the regime, lists the single minimal core {Monitor, Refresh}, and
  // omits the exhaustive num_robust_subsets count it cannot materialize.
  std::ostringstream sql;
  sql << "TABLE Gauge(id, flag, val, PRIMARY KEY(id));\n"
         "PROGRAM Monitor(:k):\n"
         "  SELECT val INTO :v FROM Gauge WHERE id = :k;\n"
         "COMMIT;\n"
         "PROGRAM Refresh(:f, :v):\n"
         "  UPDATE Gauge SET val = :v WHERE flag = :f;\n"
         "COMMIT;\n"
         "TABLE T(a, b, PRIMARY KEY(a));\n";
  for (int i = 1; i <= kMaxSubsetPrograms - 1; ++i) {
    sql << "PROGRAM P" << i << "(:x):\n  SELECT b FROM T WHERE a = :x;\nCOMMIT;\n";
  }
  SessionManager manager;
  Json load = Request(manager, std::string(R"({"cmd":"load_sql","session":"wide","sql":)") +
                                   Json::Str(sql.str()).Dump() + "}");
  ASSERT_TRUE(load.GetBool("ok", false)) << load.GetString("error");
  ASSERT_EQ(load.GetInt("num_programs", -1), kMaxSubsetPrograms + 1);

  Json subsets = Request(manager, R"({"cmd":"subsets","session":"wide"})");
  ASSERT_TRUE(subsets.GetBool("ok", false)) << subsets.GetString("error");
  EXPECT_EQ(subsets.GetString("search"), "core_guided");
  EXPECT_EQ(subsets.GetInt("num_programs", -1), kMaxSubsetPrograms + 1);
  EXPECT_EQ(subsets.Find("num_robust_subsets"), nullptr);
  EXPECT_GT(subsets.GetInt("detector_queries", 0), 0);

  // Exactly one minimal core: the conflicting pair, rendered by name.
  EXPECT_EQ(subsets.GetInt("num_cores", -1), 1);
  const Json* cores = subsets.Find("cores");
  ASSERT_NE(cores, nullptr);
  ASSERT_EQ(cores->size(), 1);
  ASSERT_EQ(cores->at(0).size(), 2);
  EXPECT_EQ(cores->at(0).at(0).string_value(), "Monitor");
  EXPECT_EQ(cores->at(0).at(1).string_value(), "Refresh");

  // Two maximal robust subsets — everything minus one side of the core.
  const Json* maximal = subsets.Find("maximal");
  ASSERT_NE(maximal, nullptr);
  ASSERT_EQ(maximal->size(), 2);
  for (int i = 0; i < maximal->size(); ++i) {
    EXPECT_EQ(maximal->at(i).size(), kMaxSubsetPrograms);
    bool has_monitor = false, has_refresh = false;
    for (int j = 0; j < maximal->at(i).size(); ++j) {
      const std::string& name = maximal->at(i).at(j).string_value();
      has_monitor |= name == "Monitor";
      has_refresh |= name == "Refresh";
    }
    EXPECT_NE(has_monitor, has_refresh);
  }
}

TEST(ProtocolIsolationTest, DaemonDefaultIsolationAppliesToNewSessionsOnly) {
  SessionManager manager;
  ProtocolOptions rc_default;
  rc_default.default_isolation = IsolationLevel::kRc;

  Json created =
      Request(manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank"})", rc_default);
  ASSERT_TRUE(created.GetBool("ok", false));
  Json stats = Request(manager, R"({"cmd":"stats","session":"s"})", rc_default);
  EXPECT_EQ(stats.GetString("isolation"), "rc");
  EXPECT_EQ(stats.GetString("settings"), "attr dep + FK @ rc");

  // A request naming mvrc explicitly still beats the daemon default at
  // creation time.
  Json mvrc_session = Request(
      manager, R"({"cmd":"load_sql","session":"m","builtin":"auction","isolation":"mvrc"})",
      rc_default);
  ASSERT_TRUE(mvrc_session.GetBool("ok", false));
  Json mvrc_stats = Request(manager, R"({"cmd":"stats","session":"m"})", rc_default);
  EXPECT_EQ(mvrc_stats.GetString("isolation"), "mvrc");
}

// SessionStats::ToJson is the single spelling of the stats fields, shared by
// the protocol `stats` command, the `metrics` session block, and
// `mvrcdet --json`. This test pins the field names: renaming one is a
// protocol break and must show up here.
TEST(SessionStatsTest, ToJsonPinsFieldNames) {
  WorkloadSession session("pin", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session.LoadWorkload(MakeSmallBank()).ok());
  session.Check();
  session.Check();  // second check hits the verdict cache

  const Json stats = session.stats().ToJson();
  const char* kFields[] = {
      "programs_added",     "programs_removed",      "programs_replaced",
      "cells_computed",     "stmt_pairs_evaluated",  "shapes_interned",
      "graph_materializations", "detector_runs",     "subset_sweeps",
      "verdict_cache_hits", "verdict_cache_misses",  "verdict_cache_size"};
  ASSERT_EQ(stats.size(), static_cast<int>(sizeof(kFields) / sizeof(kFields[0])));
  for (const char* field : kFields) {
    ASSERT_NE(stats.Find(field), nullptr) << field;
    EXPECT_TRUE(stats.Find(field)->is_number()) << field;
  }
  EXPECT_GE(stats.GetInt("programs_added", -1), 1);
  EXPECT_EQ(stats.GetInt("verdict_cache_hits", -1), 1);

  // The protocol `stats` response carries exactly these spellings.
  SessionManager manager;
  Json load = Request(manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank"})");
  ASSERT_TRUE(load.GetBool("ok", false)) << load.GetString("error");
  Json response = Request(manager, R"({"cmd":"stats","session":"s"})");
  for (const char* field : kFields) {
    EXPECT_NE(response.Find(field), nullptr) << field;
  }
}

TEST(ProtocolTest, MetricsCommandReportsCountersAndLatencies) {
  SessionManager manager;
  Json load = Request(manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank"})");
  ASSERT_TRUE(load.GetBool("ok", false)) << load.GetString("error");
  Json check = Request(manager, R"({"cmd":"check","session":"s"})");
  ASSERT_TRUE(check.GetBool("ok", false)) << check.GetString("error");

  Json metrics = Request(manager, R"({"cmd":"metrics"})");
  ASSERT_TRUE(metrics.GetBool("ok", false)) << metrics.GetString("error");
  const Json* counters = metrics.Find("counters");
  ASSERT_NE(counters, nullptr);
  // The session layer ran at least one mutation and one check in this
  // process (metrics are process-global, so >= rather than ==).
  ASSERT_NE(counters->Find("session.checks"), nullptr);
  EXPECT_GE(counters->Find("session.checks")->int_value(), 1);
  ASSERT_NE(counters->Find("session.mutations"), nullptr);
  EXPECT_GE(counters->Find("session.mutations")->int_value(), 1);
  ASSERT_NE(counters->Find("protocol.requests"), nullptr);
  EXPECT_GE(counters->Find("protocol.requests")->int_value(), 2);

  // Check latency percentiles, the headline of the `metrics` command.
  const Json* hists = metrics.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const Json* check_us = hists->Find("session.check_us");
  ASSERT_NE(check_us, nullptr);
  EXPECT_GE(check_us->Find("count")->int_value(), 1);
  for (const char* key : {"p50", "p95", "p99"}) {
    ASSERT_NE(check_us->Find(key), nullptr) << key;
    EXPECT_GE(check_us->Find(key)->int_value(), 0) << key;
  }

  const Json* trace = metrics.Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_NE(trace->Find("enabled"), nullptr);
  EXPECT_TRUE(trace->Find("enabled")->is_bool());

  // With a session, the response adds that session's stats block.
  Json scoped = Request(manager, R"({"cmd":"metrics","session":"s"})");
  ASSERT_TRUE(scoped.GetBool("ok", false));
  EXPECT_EQ(scoped.GetString("session"), "s");
  const Json* session_stats = scoped.Find("session_stats");
  ASSERT_NE(session_stats, nullptr);
  EXPECT_GE(session_stats->GetInt("programs_added", -1), 1);

  Json missing = Request(manager, R"({"cmd":"metrics","session":"nope"})");
  EXPECT_FALSE(missing.GetBool("ok", true));
}

TEST(ProtocolTest, EveryResponseCarriesElapsedUs) {
  SessionManager manager;
  Json ok_response = Request(manager, R"({"cmd":"stats"})");
  ASSERT_NE(ok_response.Find("elapsed_us"), nullptr);
  EXPECT_GE(ok_response.Find("elapsed_us")->int_value(), 0);

  Json error_response = Request(manager, R"({"cmd":"no_such_cmd"})");
  EXPECT_FALSE(error_response.GetBool("ok", true));
  ASSERT_NE(error_response.Find("elapsed_us"), nullptr);
  EXPECT_GE(error_response.Find("elapsed_us")->int_value(), 0);
}

TEST(ProtocolTest, AuctionNBuiltinScalesThePredefinedWorkload) {
  SessionManager manager;
  // auction11 = 22 programs: past the 20-program exhaustive-sweep cap, so a
  // subsets request on it must take the core-guided lattice path.
  Json load = Request(manager, R"({"cmd":"load_sql","session":"a","builtin":"auction11"})");
  ASSERT_TRUE(load.GetBool("ok", false)) << load.GetString("error");
  EXPECT_EQ(load.GetInt("num_programs", -1), 22);
  Json stats = Request(manager, R"({"cmd":"stats","session":"a"})");
  EXPECT_EQ(stats.GetInt("programs_added", -1), 22);

  Json subsets = Request(manager, R"({"cmd":"subsets","session":"a"})");
  ASSERT_TRUE(subsets.GetBool("ok", false)) << subsets.GetString("error");
  EXPECT_EQ(subsets.GetString("search"), "core_guided");

  // Degenerate and oversized suffixes are rejected like any unknown builtin.
  for (const char* bad : {"auction0", "auction999", "auctionx"}) {
    Json response = Request(
        manager, std::string(R"({"cmd":"load_sql","session":"bad","builtin":")") + bad + "\"}");
    EXPECT_FALSE(response.GetBool("ok", true)) << bad;
    EXPECT_NE(response.GetString("error").find("unknown builtin"), std::string::npos) << bad;
  }
}

// --- Durability and degradation: retryable errors, admission, snapshots ---

// A per-test state dir for the protocol-level snapshot/restore tests.
struct ProtocolTempDir {
  ProtocolTempDir() {
    std::string templ = ::testing::TempDir() + "mvrc_service_XXXXXX";
    std::vector<char> buffer(templ.begin(), templ.end());
    buffer.push_back('\0');
    EXPECT_NE(::mkdtemp(buffer.data()), nullptr);
    path = buffer.data();
  }
  ~ProtocolTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

TEST(ProtocolRetryableTest, ClientErrorsAreNeverRetryable) {
  SessionManager manager;
  // Every client-caused failure mode carries an explicit retryable:false —
  // resending identical bytes cannot succeed, and clients must be able to
  // tell that apart from shedding without string-matching the message.
  for (const char* line : {
           "this is not json",
           "[1,2,3]",                                       // not an object
           R"({"nocmd":true})",                             // missing cmd
           R"({"cmd":"frobnicate"})",                       // unknown cmd
           R"({"cmd":"check","session":"ghost"})",          // unknown session
           R"({"cmd":"load_sql","session":"s"})",           // missing sql
           R"({"cmd":"snapshot"})",                         // no store configured
           R"({"cmd":"restore"})",                          // no store configured
       }) {
    SCOPED_TRACE(line);
    Json response = Request(manager, line);
    EXPECT_FALSE(response.GetBool("ok", true));
    const Json* retryable = response.Find("retryable");
    ASSERT_NE(retryable, nullptr) << "error response without retryable flag";
    EXPECT_FALSE(retryable->bool_value());
  }
}

TEST(ProtocolRetryableTest, ShedRequestsAreRetryable) {
  SessionManager manager;
  // max_inflight=0 admits nothing: every request takes the shed path.
  AdmissionController gate(0);
  ProtocolOptions options;
  options.admission = &gate;
  Json response = Request(manager, R"({"cmd":"stats"})", options);
  EXPECT_FALSE(response.GetBool("ok", true));
  const Json* retryable = response.Find("retryable");
  ASSERT_NE(retryable, nullptr);
  EXPECT_TRUE(retryable->bool_value());
  EXPECT_EQ(gate.shed(), 1);

  // With capacity the same request sails through — the gate releases slots.
  AdmissionController open_gate(1);
  options.admission = &open_gate;
  EXPECT_TRUE(Request(manager, R"({"cmd":"stats"})", options).GetBool("ok", false));
  EXPECT_TRUE(Request(manager, R"({"cmd":"stats"})", options).GetBool("ok", false));
  EXPECT_EQ(open_gate.inflight(), 0);
}

TEST(ProtocolSnapshotTest, MutationsAutoFlushAndCommandsRoundTrip) {
  ProtocolTempDir dir;
  SnapshotStore store(dir.path);
  ASSERT_TRUE(store.Init().ok());
  ProtocolOptions options;
  options.store = &store;

  SessionManager manager;
  Json load =
      Request(manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank"})", options);
  ASSERT_TRUE(load.GetBool("ok", false)) << load.GetString("error");
  // The mutation response reports its own flush...
  EXPECT_TRUE(load.GetBool("durable", false));
  // ...and the snapshot really is on disk.
  EXPECT_EQ(store.ListKeys(), std::vector<std::string>{"s"});

  Json snapshot = Request(manager, R"({"cmd":"snapshot"})", options);
  ASSERT_TRUE(snapshot.GetBool("ok", false));
  ASSERT_NE(snapshot.Find("snapshotted"), nullptr);
  EXPECT_EQ(snapshot.Find("snapshotted")->size(), 1);
  EXPECT_EQ(snapshot.Find("skipped")->size(), 0);
  EXPECT_EQ(snapshot.Find("failed")->size(), 0);

  // A restarted daemon = a fresh manager over the same store: `restore`
  // brings the session back with identical verdicts.
  Json reference = Request(manager, R"({"cmd":"check","session":"s"})", options);
  SessionManager restarted;
  Json restore = Request(restarted, R"({"cmd":"restore"})", options);
  ASSERT_TRUE(restore.GetBool("ok", false));
  ASSERT_NE(restore.Find("restored"), nullptr);
  ASSERT_EQ(restore.Find("restored")->size(), 1);
  EXPECT_EQ(restore.Find("restored")->at(0).string_value(), "s");
  EXPECT_EQ(restore.Find("quarantined")->size(), 0);
  Json recheck = Request(restarted, R"({"cmd":"check","session":"s"})", options);
  EXPECT_EQ(recheck.GetBool("robust", true), reference.GetBool("robust", false));
  EXPECT_EQ(recheck.GetInt("num_edges", -1), reference.GetInt("num_edges", -2));

  // Restoring again is a no-op while the session lives.
  Json again = Request(restarted, R"({"cmd":"restore"})", options);
  ASSERT_TRUE(again.GetBool("ok", false));
  EXPECT_EQ(again.Find("restored")->size(), 0);
}

TEST(ProtocolSnapshotTest, DropSessionDeletesTheSnapshotFile) {
  ProtocolTempDir dir;
  SnapshotStore store(dir.path);
  ASSERT_TRUE(store.Init().ok());
  ProtocolOptions options;
  options.store = &store;

  SessionManager manager;
  ASSERT_TRUE(
      Request(manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank"})", options)
          .GetBool("ok", false));
  ASSERT_EQ(store.ListKeys().size(), 1u);
  Json dropped = Request(manager, R"({"cmd":"drop_session","session":"s"})", options);
  ASSERT_TRUE(dropped.GetBool("ok", false));
  EXPECT_TRUE(dropped.GetBool("dropped", false));
  // No stale snapshot left to resurrect the dropped session on restart.
  EXPECT_TRUE(store.ListKeys().empty());
  SessionManager restarted;
  Json restore = Request(restarted, R"({"cmd":"restore"})", options);
  EXPECT_EQ(restore.Find("restored")->size(), 0);
}

TEST(ProtocolSnapshotTest, NonReplayableSessionsAreReportedAsSkipped) {
  ProtocolTempDir dir;
  SnapshotStore store(dir.path);
  ASSERT_TRUE(store.Init().ok());
  ProtocolOptions options;
  options.store = &store;

  SessionManager manager;
  // Mutate through the non-journaled entry point: prebuilt Btps, no source.
  std::shared_ptr<WorkloadSession> session =
      manager.GetOrCreate("prebuilt", AnalysisSettings::AttrDepFk());
  ASSERT_TRUE(session->LoadWorkload(MakeSmallBank()).ok());

  Json snapshot = Request(manager, R"({"cmd":"snapshot"})", options);
  ASSERT_TRUE(snapshot.GetBool("ok", false));
  EXPECT_EQ(snapshot.Find("snapshotted")->size(), 0);
  ASSERT_EQ(snapshot.Find("skipped")->size(), 1);
  EXPECT_EQ(snapshot.Find("skipped")->at(0).string_value(), "prebuilt");

  // The same degradation is visible per-mutation: the protocol-level remove
  // succeeds but reports the session as not durable.
  ASSERT_TRUE(session->num_programs() > 0);
  Json removed = Request(
      manager, R"({"cmd":"remove_program","session":"prebuilt","name":"Balance"})", options);
  ASSERT_TRUE(removed.GetBool("ok", false));
  EXPECT_FALSE(removed.GetBool("durable", true));
  EXPECT_FALSE(removed.GetString("persist_error").empty());
}

TEST(ProtocolSnapshotTest, FailedFlushDegradesTheResponseNotTheSession) {
  ProtocolTempDir dir;
  SnapshotStore store(dir.path);
  ASSERT_TRUE(store.Init().ok());
  ProtocolOptions options;
  options.store = &store;

  SessionManager manager;
  FaultInjection::Global().Reset();
  FaultInjection::Global().Arm("fs.write_fail", 1);
  Json load =
      Request(manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank"})", options);
  FaultInjection::Global().Reset();
  // The mutation itself succeeded and the session serves requests...
  ASSERT_TRUE(load.GetBool("ok", false)) << load.GetString("error");
  EXPECT_FALSE(load.GetBool("durable", true));
  EXPECT_FALSE(load.GetString("persist_error").empty());
  EXPECT_TRUE(
      Request(manager, R"({"cmd":"check","session":"s"})", options).GetBool("ok", false));
  // ...only the flush was lost; an explicit snapshot command recovers it.
  EXPECT_TRUE(store.ListKeys().empty());
  ASSERT_TRUE(Request(manager, R"({"cmd":"snapshot","session":"s"})", options)
                  .GetBool("ok", false));
  EXPECT_EQ(store.ListKeys(), std::vector<std::string>{"s"});
}

}  // namespace
}  // namespace mvrc
