#include "robust/report.h"

#include <gtest/gtest.h>

#include "workloads/auction.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

TEST(ReportTest, AuctionReportShape) {
  WorkloadReport report = BuildReport(MakeAuction(), /*analyze_subsets=*/true);
  EXPECT_EQ(report.workload_name, "Auction");
  EXPECT_EQ(report.num_programs, 2);
  EXPECT_EQ(report.num_unfolded, 3);
  // 4 settings x 2 methods.
  ASSERT_EQ(report.verdicts.size(), 8u);
  // attr dep + FK / type-II must be robust; its type-I counterpart not.
  bool found_type2 = false, found_type1 = false;
  for (const VerdictEntry& entry : report.verdicts) {
    if (std::string(entry.settings.name()) != "attr dep + FK") continue;
    if (entry.method == Method::kTypeII) {
      EXPECT_TRUE(entry.robust);
      EXPECT_TRUE(entry.witness.empty());
      found_type2 = true;
    } else {
      EXPECT_FALSE(entry.robust);
      EXPECT_FALSE(entry.witness.empty());
      found_type1 = true;
    }
    EXPECT_EQ(entry.num_edges, 17);
    EXPECT_EQ(entry.num_counterflow_edges, 1);
  }
  EXPECT_TRUE(found_type2);
  EXPECT_TRUE(found_type1);
  ASSERT_TRUE(report.maximal_robust_subsets.has_value());
  EXPECT_EQ(*report.maximal_robust_subsets, std::vector<std::string>{"{FB, PB}"});
}

TEST(ReportTest, TextRenderingContainsEverything) {
  WorkloadReport report = BuildReport(MakeSmallBank(), /*analyze_subsets=*/true);
  std::string text = report.ToText();
  EXPECT_NE(text.find("SmallBank"), std::string::npos);
  EXPECT_NE(text.find("attr dep + FK"), std::string::npos);
  EXPECT_NE(text.find("{Am, DC, TS}"), std::string::npos);
  EXPECT_NE(text.find("type-II"), std::string::npos);
}

TEST(ReportTest, SubsetsSkippedWhenDisabled) {
  WorkloadReport report = BuildReport(MakeSmallBank(), /*analyze_subsets=*/false);
  EXPECT_FALSE(report.maximal_robust_subsets.has_value());
}

}  // namespace
}  // namespace mvrc
