#include "robust/detector.h"

#include <gtest/gtest.h>

#include "summary/build_summary.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

// Builds a tiny synthetic LTP with a single key-select or key-update
// statement, for hand-constructed summary graphs.
Ltp OneStmtLtp(const Schema& schema, RelationId rel, const std::string& name,
               bool writer) {
  std::vector<Occurrence> occs;
  if (writer) {
    occs.push_back(
        {Statement::KeyUpdate("w", schema, rel, AttrSet{}, AttrSet{1}), 0, {}});
  } else {
    occs.push_back({Statement::KeySelect("r", schema, rel, AttrSet{1}), 0, {}});
  }
  return Ltp(name, name, std::move(occs), {});
}

class HandGraphTest : public ::testing::Test {
 protected:
  HandGraphTest() { rel_ = schema_.AddRelation("R", {"a", "b"}, {"a"}); }
  Schema schema_;
  RelationId rel_ = -1;
};

TEST_F(HandGraphTest, NoEdgesIsRobustUnderBothMethods) {
  SummaryGraph graph({OneStmtLtp(schema_, rel_, "A", false)});
  EXPECT_TRUE(IsRobust(graph, Method::kTypeI));
  EXPECT_TRUE(IsRobust(graph, Method::kTypeII));
  EXPECT_TRUE(IsRobust(graph, Method::kTypeIINaive));
}

TEST_F(HandGraphTest, PureNonCounterflowCycleIsRobust) {
  // A <-> B with only nc edges: type-I and type-II cycles need a cf edge.
  SummaryGraph graph(
      {OneStmtLtp(schema_, rel_, "A", true), OneStmtLtp(schema_, rel_, "B", true)});
  graph.AddEdge({0, 0, false, 0, 1});
  graph.AddEdge({1, 0, false, 0, 0});
  EXPECT_TRUE(IsRobust(graph, Method::kTypeI));
  EXPECT_TRUE(IsRobust(graph, Method::kTypeII));
}

TEST_F(HandGraphTest, CounterflowOnCycleBreaksTypeIButNotAlwaysTypeII) {
  // A --cf--> B --nc--> A. Type-I: cycle with cf edge -> not robust.
  // Type-II: needs adjacent or ordered counterflow pair; the only pattern is
  // nc(B->A) followed by cf(A->B) with q'_i == q_i (positions equal) and
  // type(q3) = key upd (B's writer) -> no type-II cycle.
  SummaryGraph graph(
      {OneStmtLtp(schema_, rel_, "A", false), OneStmtLtp(schema_, rel_, "B", true)});
  graph.AddEdge({0, 0, true, 0, 1});   // A.r -> B.w counterflow (rw)
  graph.AddEdge({1, 0, false, 0, 0});  // B.w -> A.r non-counterflow (wr)
  EXPECT_FALSE(IsRobust(graph, Method::kTypeI));
  EXPECT_TRUE(IsRobust(graph, Method::kTypeII));
  EXPECT_TRUE(IsRobust(graph, Method::kTypeIINaive));
}

TEST_F(HandGraphTest, AdjacentCounterflowPairIsTypeII) {
  // A --cf--> B --cf--> C --nc--> A: two adjacent counterflow edges plus a
  // non-counterflow edge closing the cycle.
  SummaryGraph graph({OneStmtLtp(schema_, rel_, "A", false),
                      OneStmtLtp(schema_, rel_, "B", false),
                      OneStmtLtp(schema_, rel_, "C", true)});
  graph.AddEdge({0, 0, true, 0, 1});
  graph.AddEdge({1, 0, true, 0, 2});
  graph.AddEdge({2, 0, false, 0, 0});
  EXPECT_FALSE(IsRobust(graph, Method::kTypeI));
  EXPECT_FALSE(IsRobust(graph, Method::kTypeII));
  EXPECT_FALSE(IsRobust(graph, Method::kTypeIINaive));

  std::optional<TypeIIWitness> witness = FindTypeIICycle(graph);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->e3.counterflow);
  EXPECT_TRUE(witness->e4.counterflow);
  EXPECT_EQ(witness->e3.to_program, witness->e4.from_program);
  EXPECT_FALSE(witness->Describe(graph).empty());
}

TEST_F(HandGraphTest, OrderedCounterflowByPosition) {
  // Program B reads twice: occurrence 0 feeds a counterflow edge and
  // occurrence 1 receives a non-counterflow edge; q'_i (0) <_B q_i (1)
  // triggers the ordered-counterflow condition.
  std::vector<Occurrence> b_occs;
  b_occs.push_back({Statement::KeySelect("r1", schema_, rel_, AttrSet{1}), 0, {}});
  b_occs.push_back({Statement::KeySelect("r2", schema_, rel_, AttrSet{1}), 1, {}});
  SummaryGraph graph(
      {OneStmtLtp(schema_, rel_, "A", true), Ltp("B", "B", std::move(b_occs), {})});
  graph.AddEdge({0, 0, false, 1, 1});  // A.w -> B.r2 (nc), target pos 1
  graph.AddEdge({1, 0, true, 0, 0});   // B.r1 -> A.w (cf), source pos 0
  EXPECT_FALSE(IsRobust(graph, Method::kTypeII));

  // Reversing the positions (cf out of the *later* read) is robust: the
  // writer-typed nc source and q'_i >= q_i disable both conditions.
  SummaryGraph graph2({OneStmtLtp(schema_, rel_, "A", true),
                       Ltp("B", "B",
                           {{Statement::KeySelect("r1", schema_, rel_, AttrSet{1}), 0, {}},
                            {Statement::KeySelect("r2", schema_, rel_, AttrSet{1}),
                             1,
                             {}}},
                           {})});
  graph2.AddEdge({0, 0, false, 0, 1});  // A.w -> B.r1 (nc), target pos 0
  graph2.AddEdge({1, 1, true, 0, 0});   // B.r2 -> A.w (cf), source pos 1
  EXPECT_TRUE(IsRobust(graph2, Method::kTypeII));
}

TEST_F(HandGraphTest, OrderedCounterflowByReadLikeSourceType) {
  // The nc edge's source statement has a (predicate) read type, which
  // triggers condition (2) of Theorem 6.4 regardless of positions.
  std::vector<Occurrence> c_occs;
  c_occs.push_back(
      {Statement::PredSelect("p", schema_, rel_, AttrSet{1}, AttrSet{1}), 0, {}});
  SummaryGraph graph({OneStmtLtp(schema_, rel_, "A", true),
                      OneStmtLtp(schema_, rel_, "B", false),
                      Ltp("C", "C", std::move(c_occs), {})});
  // C.p --nc--> B.r (predicate wr is impossible, but rw nc from pred sel to a
  // writer would be; the detector only looks at the structure so we wire the
  // shape directly), B.r --cf--> A.w, A.w --nc--> C.p.
  graph.AddEdge({2, 0, false, 0, 1});
  graph.AddEdge({1, 0, true, 0, 0});
  graph.AddEdge({0, 0, false, 0, 2});
  EXPECT_FALSE(IsRobust(graph, Method::kTypeII));
}

TEST_F(HandGraphTest, CounterflowCycleWithoutNonCounterflowIsRobust) {
  // Only counterflow edges: no cycle can have a non-counterflow dependency,
  // so type-II reports robust (type-I does not).
  SummaryGraph graph(
      {OneStmtLtp(schema_, rel_, "A", false), OneStmtLtp(schema_, rel_, "B", false)});
  graph.AddEdge({0, 0, true, 0, 1});
  graph.AddEdge({1, 0, true, 0, 0});
  EXPECT_FALSE(IsRobust(graph, Method::kTypeI));
  EXPECT_TRUE(IsRobust(graph, Method::kTypeII));
}

TEST_F(HandGraphTest, TypeIWitnessHasReturnPath) {
  SummaryGraph graph(
      {OneStmtLtp(schema_, rel_, "A", false), OneStmtLtp(schema_, rel_, "B", true)});
  graph.AddEdge({0, 0, true, 0, 1});
  graph.AddEdge({1, 0, false, 0, 0});
  std::optional<TypeIWitness> witness = FindTypeICycle(graph);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->edge.counterflow);
  ASSERT_GE(witness->return_path.size(), 2u);
  EXPECT_EQ(witness->return_path.front(), witness->edge.to_program);
  EXPECT_EQ(witness->return_path.back(), witness->edge.from_program);
  EXPECT_FALSE(witness->Describe(graph).empty());
}

TEST(DetectorWorkloadTest, AuctionIsRobustWithTypeIIButNotTypeI) {
  // §2: the summary graph of {FindBids, PlaceBid} contains a type-I cycle
  // but no type-II cycle.
  Workload auction = MakeAuction();
  EXPECT_TRUE(
      IsRobustAgainstMvrc(auction.programs, AnalysisSettings::AttrDepFk(), Method::kTypeII));
  EXPECT_FALSE(
      IsRobustAgainstMvrc(auction.programs, AnalysisSettings::AttrDepFk(), Method::kTypeI));
}

TEST(DetectorWorkloadTest, NaiveAndOptimizedAgreeOnWorkloads) {
  for (const Workload& workload : {MakeAuction(), MakeSmallBank()}) {
    for (AnalysisSettings settings :
         {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDep(),
          AnalysisSettings::TupleDepFk(), AnalysisSettings::AttrDepFk()}) {
      SummaryGraph graph = BuildSummaryGraph(workload.programs, settings);
      EXPECT_EQ(FindTypeIICycle(graph).has_value(),
                FindTypeIICycleNaive(graph).has_value())
          << workload.name << " under " << settings.name();
    }
  }
}

}  // namespace
}  // namespace mvrc
