#include "instantiate/instantiator.h"

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

class InstantiatorAuctionTest : public ::testing::Test {
 protected:
  InstantiatorAuctionTest() : workload_(MakeAuction()) {
    ltps_ = UnfoldAtMost2(workload_.programs);
  }
  Workload workload_;
  std::vector<Ltp> ltps_;  // FindBids, PlaceBid1, PlaceBid2
};

TEST_F(InstantiatorAuctionTest, PlaceBid1MatchesFigure3) {
  // Figure 3's T2: R[t1]W[t1] R[u1] W[u1] I[l2] C — the q5 chunk loses its
  // read because q4 already read u1.
  const Ltp& place_bid1 = ltps_[1];
  std::vector<StatementBinding> bindings(4);
  bindings[0].tuple = 0;  // q3: Buyer t
  bindings[1].tuple = 0;  // q4: Bids u (= f1 of Buyer 0)
  bindings[2].tuple = 0;  // q5: Bids u
  bindings[3].tuple = 0;  // q6: Log l
  std::optional<Transaction> txn = InstantiateLtp(place_bid1, bindings, 2);
  ASSERT_TRUE(txn.has_value());
  EXPECT_EQ(txn->ToString(workload_.schema),
            "R2[Buyer#0]W2[Buyer#0]R2[Bids#0]W2[Bids#0]I2[Log#0]C2");
  // Chunks: the q3 R/W pair. q5's W stands alone after read-merging.
  ASSERT_EQ(txn->chunks().size(), 1u);
  EXPECT_EQ(txn->chunks()[0], std::make_pair(0, 1));
  EXPECT_TRUE(txn->Validate().ok());
}

TEST_F(InstantiatorAuctionTest, PlaceBid2SkipsOptionalUpdate) {
  const Ltp& place_bid2 = ltps_[2];
  std::vector<StatementBinding> bindings(3);
  bindings[0].tuple = 0;
  bindings[1].tuple = 0;
  bindings[2].tuple = 0;  // q3 = f2(q6) forces the Log tuple to the buyer's
  std::optional<Transaction> txn = InstantiateLtp(place_bid2, bindings, 1);
  ASSERT_TRUE(txn.has_value());
  EXPECT_EQ(txn->ToString(workload_.schema),
            "R1[Buyer#0]W1[Buyer#0]R1[Bids#0]I1[Log#0]C1");
}

TEST_F(InstantiatorAuctionTest, FindBidsPredicateRead) {
  const Ltp& find_bids = ltps_[0];
  std::vector<StatementBinding> bindings(2);
  bindings[0].tuple = 1;              // q1: Buyer
  bindings[1].pred_tuples = {0, 1};   // q2: reads both Bids tuples
  std::optional<Transaction> txn = InstantiateLtp(find_bids, bindings, 3);
  ASSERT_TRUE(txn.has_value());
  EXPECT_EQ(txn->ToString(workload_.schema),
            "R3[Buyer#1]W3[Buyer#1]PR3[Bids]R3[Bids#0]R3[Bids#1]C3");
  // Chunks: q1's R/W and q2's PR+reads.
  ASSERT_EQ(txn->chunks().size(), 2u);
  EXPECT_EQ(txn->chunks()[1], std::make_pair(2, 4));
}

TEST_F(InstantiatorAuctionTest, ForeignKeyConstraintRejectsMismatch) {
  // q4 over Bids#1 requires q3 over Buyer#1 (identity interpretation).
  const Ltp& place_bid1 = ltps_[1];
  std::vector<StatementBinding> bindings(4);
  bindings[0].tuple = 0;  // Buyer 0
  bindings[1].tuple = 1;  // Bids 1: violates q3 = f1(q4)
  bindings[2].tuple = 1;
  bindings[3].tuple = 0;
  EXPECT_FALSE(InstantiateLtp(place_bid1, bindings, 0).has_value());
}

TEST_F(InstantiatorAuctionTest, PredicateChildConstraint) {
  // In a pred-child constraint, every selected tuple must map to the parent.
  Schema schema;
  RelationId parent = schema.AddRelation("P", {"p"}, {"p"});
  RelationId child = schema.AddRelation("C", {"c", "v"}, {"c"});
  ForeignKeyId f = schema.AddForeignKey("f", child, {"c"}, parent);
  std::vector<Occurrence> occs;
  occs.push_back({Statement::KeyUpdate("qa", schema, parent, AttrSet{0}, AttrSet{0}),
                  0,
                  {}});
  occs.push_back(
      {Statement::PredSelect("qb", schema, child, AttrSet{1}, AttrSet{1}), 1, {}});
  Ltp ltp("L", "L", std::move(occs), {{0, f, 1}});

  std::vector<StatementBinding> ok(2);
  ok[0].tuple = 1;
  ok[1].pred_tuples = {1};
  EXPECT_TRUE(InstantiateLtp(ltp, ok, 0).has_value());

  std::vector<StatementBinding> bad(2);
  bad[0].tuple = 1;
  bad[1].pred_tuples = {0, 1};
  EXPECT_FALSE(InstantiateLtp(ltp, bad, 0).has_value());
}

TEST_F(InstantiatorAuctionTest, EnumerateBindingsRespectsConstraints) {
  // PlaceBid1 with domain 2: q3/q4/q5 forced equal by f1; q6 forced equal by
  // f2 (Log's buyer = Buyer): 2 choices x ... all tied to the buyer index ->
  // exactly 2 bindings.
  std::vector<std::vector<StatementBinding>> bindings =
      EnumerateBindings(ltps_[1], /*domain_size=*/2, /*enumerate_pred_subsets=*/false);
  EXPECT_EQ(bindings.size(), 2u);
  for (const auto& b : bindings) {
    EXPECT_EQ(b[0].tuple, b[1].tuple);
    EXPECT_EQ(b[0].tuple, b[2].tuple);
    EXPECT_EQ(b[0].tuple, b[3].tuple);
  }
}

TEST_F(InstantiatorAuctionTest, EnumerateBindingsPredSubsets) {
  // FindBids: q1 free (2 choices) x q2 subsets of {0,1} (4) = 8.
  std::vector<std::vector<StatementBinding>> with_subsets =
      EnumerateBindings(ltps_[0], 2, /*enumerate_pred_subsets=*/true);
  EXPECT_EQ(with_subsets.size(), 8u);
  std::vector<std::vector<StatementBinding>> full_only =
      EnumerateBindings(ltps_[0], 2, /*enumerate_pred_subsets=*/false);
  EXPECT_EQ(full_only.size(), 2u);
}

TEST(InstantiatorSmallBankTest, DuplicateWriteRejected) {
  // Amalgamate with both customers equal writes Checking#x twice: the
  // one-write-per-tuple convention makes the binding inadmissible.
  Workload workload = MakeSmallBank();
  std::vector<Ltp> ltps = UnfoldAtMost2(workload.programs);
  const Ltp& amalgamate = ltps[0];
  ASSERT_EQ(amalgamate.name(), "Amalgamate");
  std::vector<StatementBinding> bindings(5);
  for (auto& b : bindings) b.tuple = 0;  // same customer everywhere
  EXPECT_FALSE(InstantiateLtp(amalgamate, bindings, 0).has_value());

  // Distinct customers are fine.
  std::vector<StatementBinding> distinct(5);
  distinct[0].tuple = 0;  // q1: Account x1
  distinct[1].tuple = 1;  // q2: Account x2
  distinct[2].tuple = 0;  // q3: Savings x1
  distinct[3].tuple = 0;  // q4: Checking x1
  distinct[4].tuple = 1;  // q5: Checking x2
  EXPECT_TRUE(InstantiateLtp(amalgamate, distinct, 0).has_value());
}

TEST(InstantiatorSmallBankTest, EnumerateBindingsCountsFreeVariables) {
  Workload workload = MakeSmallBank();
  std::vector<Ltp> ltps = UnfoldAtMost2(workload.programs);
  // Balance has one free customer variable (q7, q8 tied to q6): 2 bindings.
  EXPECT_EQ(EnumerateBindings(ltps[1], 2, false).size(), 2u);
  // Amalgamate has two free variables (x1, x2): 4 bindings.
  EXPECT_EQ(EnumerateBindings(ltps[0], 2, false).size(), 4u);
}

}  // namespace
}  // namespace mvrc
