#include "util/attr_set.h"

#include <gtest/gtest.h>

namespace mvrc {
namespace {

TEST(AttrSetTest, DefaultIsEmpty) {
  AttrSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
}

TEST(AttrSetTest, InsertAndContains) {
  AttrSet set;
  set.Insert(0);
  set.Insert(5);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(1));
  EXPECT_EQ(set.size(), 2);
}

TEST(AttrSetTest, InitializerList) {
  AttrSet set{1, 3, 5};
  EXPECT_EQ(set.size(), 3);
  EXPECT_TRUE(set.Contains(3));
}

TEST(AttrSetTest, FirstN) {
  AttrSet set = AttrSet::FirstN(3);
  EXPECT_EQ(set.size(), 3);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_TRUE(AttrSet::FirstN(0).empty());
  EXPECT_EQ(AttrSet::FirstN(64).size(), 64);
}

TEST(AttrSetTest, Intersects) {
  AttrSet a{1, 2};
  AttrSet b{2, 3};
  AttrSet c{4};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(AttrSet{}.Intersects(a));
}

TEST(AttrSetTest, SubsetUnionIntersection) {
  AttrSet a{1, 2};
  AttrSet b{1, 2, 3};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_EQ(a.Union(b), b);
  EXPECT_EQ(a.Intersection(b), a);
  EXPECT_EQ(a.Intersection(AttrSet{3}), AttrSet{});
}

TEST(AttrSetTest, ToVectorSorted) {
  AttrSet set{9, 1, 4};
  EXPECT_EQ(set.ToVector(), (std::vector<AttrId>{1, 4, 9}));
}

TEST(AttrSetTest, EqualityDistinguishesEmptyFromNonEmpty) {
  EXPECT_EQ(AttrSet{}, AttrSet{});
  EXPECT_NE(AttrSet{}, AttrSet{0});
}

}  // namespace
}  // namespace mvrc
