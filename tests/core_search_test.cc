// Differential test of the core-guided subset search against the exhaustive
// sweep oracle: on randomized (seeded) and builtin workloads within the
// exhaustive range, AnalyzeSubsetsCoreGuided must reproduce AnalyzeSubsets'
// verdicts bit-for-bit — robust_masks, maximal_masks, and IsRobustSubset
// answers — under both the MVRC and the lock-based-RC isolation policies,
// and its cores must be exactly the minimal non-robust subsets a brute
// force over the exhaustive verdicts finds. Beyond the exhaustive range,
// where no oracle exists, the lattice is checked against the detector
// directly: cores are non-robust and minimal, maximal sets are robust and
// maximal, and sampled subsets answer from the lattice exactly as the
// detector does. Also covers the ProgramSet wide-mask encoding itself and
// its parity with uint32_t masks on the MaskedDetector, witnesses included.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "robust/core_search.h"
#include "robust/detector.h"
#include "robust/masked_detector.h"
#include "robust/program_set.h"
#include "robust/subsets.h"
#include "robust/verdict_cache.h"
#include "summary/build_summary.h"
#include "util/thread_pool.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"

namespace mvrc {
namespace {

// --- ProgramSet: the wide-mask encoding.

TEST(ProgramSetTest, BasicOperationsAcrossWordBoundaries) {
  ProgramSet set(70);  // two words, 6-bit tail
  EXPECT_EQ(set.num_programs(), 70);
  EXPECT_EQ(set.num_words(), 2);
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.Count(), 0);

  set.Set(0);
  set.Set(63);
  set.Set(64);
  set.Set(69);
  EXPECT_FALSE(set.Empty());
  EXPECT_EQ(set.Count(), 4);
  EXPECT_TRUE(set.Test(63));
  EXPECT_TRUE(set.Test(64));
  EXPECT_FALSE(set.Test(1));
  EXPECT_EQ(set.ToIndices(), (std::vector<int>{0, 63, 64, 69}));

  set.Reset(63);
  EXPECT_FALSE(set.Test(63));
  EXPECT_EQ(set.Count(), 3);

  EXPECT_EQ(set.With(7).Count(), 4);
  EXPECT_EQ(set.Without(0).Count(), 2);
  EXPECT_EQ(set, set.With(64));  // already a member
}

TEST(ProgramSetTest, ComplementStaysWithinDomain) {
  ProgramSet set(70);
  set.Set(3);
  set.Set(65);
  ProgramSet complement = set.Complement();
  EXPECT_EQ(complement.Count(), 68);
  EXPECT_FALSE(complement.Test(3));
  EXPECT_FALSE(complement.Test(65));
  EXPECT_TRUE(complement.Test(69));
  // Tail bits past num_programs stay zero, so double complement is exact.
  EXPECT_EQ(complement.Complement(), set);
  EXPECT_EQ(ProgramSet(70).Complement(), ProgramSet::Full(70));
  EXPECT_EQ(ProgramSet::Full(70).Complement(), ProgramSet(70));
}

TEST(ProgramSetTest, SubsetAndIntersectionTests) {
  ProgramSet a(100), b(100);
  a.Set(1);
  a.Set(70);
  b.Set(1);
  b.Set(70);
  b.Set(99);
  EXPECT_TRUE(b.ContainsAll(a));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.ContainsAll(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(ProgramSet(100)));
  EXPECT_TRUE(ProgramSet::Full(100).ContainsAll(b));
}

TEST(ProgramSetTest, NarrowMaskRoundTripAndOrderParity) {
  const int n = 11;
  std::vector<uint32_t> masks = {0, 1, 5, 0x2a, 0x400, (uint32_t{1} << n) - 1, 0x123};
  for (uint32_t mask : masks) {
    ProgramSet set = ProgramSet::FromMask(mask, n);
    EXPECT_EQ(set.ToMask(), mask);
    EXPECT_EQ(set.Count(), __builtin_popcount(mask));
    for (int i = 0; i < n; ++i) EXPECT_EQ(set.Test(i), ((mask >> i) & 1) != 0);
  }
  // operator< is the numeric order of the encoded integer: sorting wide and
  // narrow representations of the same subsets yields aligned vectors.
  std::vector<ProgramSet> wide;
  for (uint32_t mask : masks) wide.push_back(ProgramSet::FromMask(mask, n));
  std::sort(wide.begin(), wide.end());
  std::sort(masks.begin(), masks.end());
  for (size_t i = 0; i < masks.size(); ++i) EXPECT_EQ(wide[i].ToMask(), masks[i]);
}

// --- Shared helpers (mirroring tests/masked_detector_test.cc).

struct GraphUnderTest {
  SummaryGraph graph;
  std::vector<std::pair<int, int>> ltp_range;
};

GraphUnderTest Build(const std::vector<Btp>& programs, const AnalysisSettings& settings) {
  std::vector<Ltp> all_ltps;
  std::vector<std::pair<int, int>> ltp_range;
  for (const Btp& program : programs) {
    std::vector<Ltp> unfolded = UnfoldAtMost2(program);
    ltp_range.push_back({static_cast<int>(all_ltps.size()),
                         static_cast<int>(all_ltps.size() + unfolded.size())});
    for (Ltp& ltp : unfolded) all_ltps.push_back(std::move(ltp));
  }
  return {BuildSummaryGraph(std::move(all_ltps), settings), std::move(ltp_range)};
}

// --- Wide-mask parity on the detector: same verdicts AND same witnesses as
// the uint32_t encoding, under both isolation policies.

void ExpectWideNarrowParity(const std::vector<Btp>& programs,
                            const AnalysisSettings& settings, const std::string& context) {
  GraphUnderTest t = Build(programs, settings);
  MaskedDetector detector(t.graph, t.ltp_range, settings.policy());
  DetectorScratch scratch = detector.MakeScratch();
  const uint32_t full = (uint32_t{1} << programs.size()) - 1;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const ProgramSet wide = ProgramSet::FromMask(mask, detector.num_programs());
    for (Method method : {Method::kTypeI, Method::kTypeII}) {
      EXPECT_EQ(detector.IsRobust(wide, method, scratch),
                detector.IsRobust(mask, method, scratch))
          << context << " mask=" << mask;
    }
    std::optional<TypeIWitness> narrow1 = detector.FindTypeICycle(mask, scratch);
    std::optional<TypeIWitness> wide1 = detector.FindTypeICycle(wide, scratch);
    ASSERT_EQ(narrow1.has_value(), wide1.has_value()) << context << " mask=" << mask;
    if (narrow1.has_value()) {
      EXPECT_EQ(wide1->Describe(t.graph), narrow1->Describe(t.graph))
          << context << " mask=" << mask;
    }
    if (detector.policy().closure() == CycleClosure::kDirect) {
      std::optional<RcSplitWitness> narrow2 = detector.FindRcSplitCycle(mask, scratch);
      std::optional<RcSplitWitness> wide2 = detector.FindRcSplitCycle(wide, scratch);
      ASSERT_EQ(narrow2.has_value(), wide2.has_value()) << context << " mask=" << mask;
      if (narrow2.has_value()) {
        EXPECT_EQ(wide2->Describe(t.graph), narrow2->Describe(t.graph))
            << context << " mask=" << mask;
      }
    } else {
      std::optional<TypeIIWitness> narrow2 = detector.FindTypeIICycle(mask, scratch);
      std::optional<TypeIIWitness> wide2 = detector.FindTypeIICycle(wide, scratch);
      ASSERT_EQ(narrow2.has_value(), wide2.has_value()) << context << " mask=" << mask;
      if (narrow2.has_value()) {
        EXPECT_EQ(wide2->Describe(t.graph), narrow2->Describe(t.graph))
            << context << " mask=" << mask;
      }
    }
  }
}

TEST(MaskedDetectorWideMaskTest, WideAndNarrowEncodingsAgreeIncludingWitnesses) {
  for (const Workload& workload : {MakeSmallBank(), MakeAuction()}) {
    for (IsolationLevel isolation : {IsolationLevel::kMvrc, IsolationLevel::kRc}) {
      for (const AnalysisSettings& base :
           {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDepFk()}) {
        const AnalysisSettings settings = base.WithIsolation(isolation);
        ExpectWideNarrowParity(workload.programs, settings,
                               workload.name + " / " + settings.name());
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

// --- Core-guided vs exhaustive, within the exhaustive range.

// Brute-force minimal non-robust subsets from the exhaustive verdict list:
// non-robust masks all of whose delete-one submasks are robust (the empty
// set counts as robust).
std::vector<uint32_t> BruteForceCoreMasks(const std::set<uint32_t>& robust, int n) {
  std::vector<uint32_t> cores;
  const uint32_t full = (uint32_t{1} << n) - 1;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (robust.count(mask) != 0) continue;
    bool minimal = true;
    for (int b = 0; b < n && minimal; ++b) {
      const uint32_t sub = mask & ~(uint32_t{1} << b);
      if (sub == mask) continue;
      if (sub != 0 && robust.count(sub) == 0) minimal = false;
    }
    if (minimal) cores.push_back(mask);
  }
  return cores;
}

void ExpectCoreGuidedMatchesExhaustive(const std::vector<Btp>& programs,
                                       const AnalysisSettings& settings, Method method,
                                       const std::string& context) {
  GraphUnderTest t = Build(programs, settings);
  MaskedDetector detector(t.graph, t.ltp_range, settings.policy());

  Result<SubsetReport> exhaustive = AnalyzeSubsetsOnDetector(detector, method);
  ASSERT_TRUE(exhaustive.ok()) << context;
  CoreSearchStats stats;
  Result<SubsetReport> result =
      AnalyzeSubsetsCoreGuided(detector, method, nullptr, nullptr, &stats);
  ASSERT_TRUE(result.ok()) << context;
  const SubsetReport& report = result.value();

  // Bit-identical verdicts and maximal sets.
  EXPECT_TRUE(report.from_core_search) << context;
  EXPECT_EQ(report.robust_masks, exhaustive.value().robust_masks) << context;
  EXPECT_EQ(report.maximal_masks, exhaustive.value().maximal_masks) << context;
  ASSERT_EQ(report.maximal_sets.size(), report.maximal_masks.size()) << context;
  for (size_t i = 0; i < report.maximal_sets.size(); ++i) {
    EXPECT_EQ(report.maximal_sets[i].ToMask(), report.maximal_masks[i]) << context;
  }

  // The cores are exactly the minimal non-robust subsets.
  const std::set<uint32_t> robust(exhaustive.value().robust_masks.begin(),
                                  exhaustive.value().robust_masks.end());
  const int n = static_cast<int>(programs.size());
  std::vector<uint32_t> core_masks;
  for (const ProgramSet& core : report.cores) core_masks.push_back(core.ToMask());
  EXPECT_EQ(core_masks, BruteForceCoreMasks(robust, n)) << context;

  // Both IsRobustSubset overloads agree with the oracle on every mask, and
  // keep agreeing when only the lattice is available.
  SubsetReport lattice_only = report;
  lattice_only.robust_masks.clear();
  const uint32_t full = (uint32_t{1} << n) - 1;
  for (uint32_t mask = 0; mask <= full; ++mask) {
    const bool expected = robust.count(mask) != 0;
    EXPECT_EQ(report.IsRobustSubset(mask), expected) << context << " mask=" << mask;
    EXPECT_EQ(report.IsRobustSubset(ProgramSet::FromMask(mask, n)), expected)
        << context << " mask=" << mask;
    EXPECT_EQ(lattice_only.IsRobustSubset(mask), expected) << context << " mask=" << mask;
  }

  // Accounting: the stats decompose the total query count (serial runs never
  // chunk, so probe_queries stays zero here).
  EXPECT_EQ(stats.detector_queries,
            stats.candidate_queries + stats.probe_queries + stats.shrink_queries)
      << context;
  EXPECT_EQ(stats.probe_queries, 0) << context;
  EXPECT_EQ(report.detector_queries, stats.detector_queries) << context;
  EXPECT_GT(stats.rounds, 0) << context;

  // The parallel search is the same search: identical report, field for
  // field (outcomes are merged in deterministic batch order).
  ThreadPool pool(4);
  Result<SubsetReport> parallel = AnalyzeSubsetsCoreGuided(detector, method, &pool);
  ASSERT_TRUE(parallel.ok()) << context;
  EXPECT_EQ(parallel.value().robust_masks, report.robust_masks) << context;
  EXPECT_EQ(parallel.value().maximal_masks, report.maximal_masks) << context;
  EXPECT_EQ(parallel.value().cores, report.cores) << context;
  EXPECT_EQ(parallel.value().maximal_sets, report.maximal_sets) << context;
  EXPECT_EQ(parallel.value().num_threads, 4) << context;
}

// The randomized generator of tests/masked_detector_test.cc, with a
// configurable program count so the wide regime can be exercised too.
class RandomWorkloadGen {
 public:
  explicit RandomWorkloadGen(uint64_t seed) : rng_(seed) {}

  std::vector<Btp> Generate(Schema& schema, int num_programs = 0) {
    const int num_relations = Pick(2, 3);
    for (int r = 0; r < num_relations; ++r) {
      std::vector<std::string> attrs;
      const int num_attrs = Pick(2, 4);
      for (int a = 0; a < num_attrs; ++a) {
        attrs.push_back("a" + std::to_string(r) + std::to_string(a));
      }
      schema.AddRelation("R" + std::to_string(r), attrs, {attrs[0]});
    }
    for (int r = 1; r < num_relations; ++r) {
      if (Chance(0.5)) schema.AddForeignKey("f" + std::to_string(r), r, {}, 0);
    }
    std::vector<Btp> programs;
    if (num_programs == 0) num_programs = Pick(4, 5);
    for (int p = 0; p < num_programs; ++p) programs.push_back(GenerateProgram(schema, p));
    return programs;
  }

 private:
  int Pick(int lo, int hi) { return lo + static_cast<int>(rng_() % (hi - lo + 1)); }
  bool Chance(double p) { return (rng_() % 1000) < p * 1000; }

  AttrSet RandomSubset(const Schema& schema, RelationId rel, bool non_empty) {
    AttrSet set;
    const int n = schema.relation(rel).num_attrs();
    for (int a = 0; a < n; ++a) {
      if (Chance(0.45)) set.Insert(a);
    }
    if (non_empty && set.empty()) set.Insert(static_cast<AttrId>(rng_() % n));
    return set;
  }

  Statement RandomStatement(const Schema& schema, const std::string& label) {
    RelationId rel = static_cast<RelationId>(rng_() % schema.num_relations());
    switch (rng_() % 7) {
      case 0:
        return Statement::Insert(label, schema, rel);
      case 1:
        return Statement::KeySelect(label, schema, rel, RandomSubset(schema, rel, false));
      case 2:
        return Statement::PredSelect(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false));
      case 3:
        return Statement::KeyUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                    RandomSubset(schema, rel, true));
      case 4:
        return Statement::PredUpdate(label, schema, rel, RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, false),
                                     RandomSubset(schema, rel, true));
      case 5:
        return Statement::KeyDelete(label, schema, rel);
      default:
        return Statement::PredDelete(label, schema, rel, RandomSubset(schema, rel, false));
    }
  }

  Btp GenerateProgram(const Schema& schema, int index) {
    Btp program("P" + std::to_string(index));
    const int num_statements = Pick(2, 4);
    std::vector<StmtId> ids;
    for (int q = 0; q < num_statements; ++q) {
      ids.push_back(program.AddStatement(RandomStatement(schema, "q" + std::to_string(q + 1))));
    }
    std::vector<Btp::NodeId> nodes;
    for (StmtId id : ids) nodes.push_back(program.Stmt(id));
    if (num_statements >= 2 && Chance(0.5)) {
      const int from = Pick(0, num_statements - 2);
      const int to = Pick(from + 1, num_statements - 1);
      std::vector<Btp::NodeId> inner(nodes.begin() + from, nodes.begin() + to + 1);
      Btp::NodeId wrapped;
      switch (rng_() % 3) {
        case 0:
          wrapped = program.Loop(program.Seq(inner));
          break;
        case 1:
          wrapped = program.Optional(program.Seq(inner));
          break;
        default:
          wrapped = program.Choice(program.Seq(inner), program.Stmt(ids[from]));
          break;
      }
      std::vector<Btp::NodeId> rebuilt(nodes.begin(), nodes.begin() + from);
      rebuilt.push_back(wrapped);
      rebuilt.insert(rebuilt.end(), nodes.begin() + to + 1, nodes.end());
      nodes = std::move(rebuilt);
    }
    program.Finish(program.Seq(nodes));
    return program;
  }

  std::mt19937_64 rng_;
};

class CoreSearchRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CoreSearchRandomTest, MatchesExhaustiveSweepUnderBothPolicies) {
  RandomWorkloadGen gen(GetParam() * 6271 + 17);
  Schema schema;
  std::vector<Btp> programs = gen.Generate(schema);
  for (IsolationLevel isolation : {IsolationLevel::kMvrc, IsolationLevel::kRc}) {
    for (const AnalysisSettings& base :
         {AnalysisSettings::TupleDep(), AnalysisSettings::AttrDepFk()}) {
      const AnalysisSettings settings = base.WithIsolation(isolation);
      const std::string context =
          "seed=" + std::to_string(GetParam()) + " / " + settings.name();
      ExpectCoreGuidedMatchesExhaustive(programs, settings, Method::kTypeII, context);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // Type-I coverage (the policy-independent witness path) on one setting.
  ExpectCoreGuidedMatchesExhaustive(programs, AnalysisSettings::AttrDepFk(), Method::kTypeI,
                                    "seed=" + std::to_string(GetParam()) + " / type1");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreSearchRandomTest, ::testing::Range(0, 20));

TEST(CoreSearchBuiltinTest, MatchesExhaustiveOnSmallBankAndAuction) {
  for (const Workload& workload : {MakeSmallBank(), MakeAuction(), MakeAuctionN(3)}) {
    for (IsolationLevel isolation : {IsolationLevel::kMvrc, IsolationLevel::kRc}) {
      const AnalysisSettings settings = AnalysisSettings::AttrDepFk().WithIsolation(isolation);
      ExpectCoreGuidedMatchesExhaustive(workload.programs, settings, Method::kTypeII,
                                        workload.name + " / " + settings.name());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// --- Entry-point parity: TryAnalyzeSubsetsCoreGuided builds the same graph
// pipeline as TryAnalyzeSubsets.

TEST(CoreSearchEntryPointTest, TryAnalyzeMatchesSweepAndCountsQueries) {
  Workload workload = MakeAuctionN(3);
  const AnalysisSettings settings = AnalysisSettings::AttrDepFk();
  SubsetReport exhaustive = AnalyzeSubsets(workload.programs, settings, Method::kTypeII);
  CoreSearchStats stats;
  Result<SubsetReport> result = TryAnalyzeSubsetsCoreGuided(workload.programs, settings,
                                                            Method::kTypeII, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().robust_masks, exhaustive.robust_masks);
  EXPECT_EQ(result.value().maximal_masks, exhaustive.maximal_masks);
  EXPECT_GT(stats.detector_queries, 0);
}

TEST(CoreSearchEntryPointTest, ProgramCountBoundsAreErrors) {
  Workload workload = MakeSmallBank();
  const std::vector<Btp> empty;
  Result<SubsetReport> none =
      TryAnalyzeSubsetsCoreGuided(empty, AnalysisSettings::AttrDepFk(), Method::kTypeII);
  EXPECT_FALSE(none.ok());

  std::vector<Btp> too_many;
  for (int i = 0; i < kMaxCoreSearchPrograms + 1; ++i) {
    too_many.insert(too_many.end(), workload.programs.begin(), workload.programs.end());
    if (static_cast<int>(too_many.size()) > kMaxCoreSearchPrograms) break;
  }
  too_many.resize(kMaxCoreSearchPrograms + 1, workload.programs[0]);
  Result<SubsetReport> over = TryAnalyzeSubsetsCoreGuided(
      too_many, AnalysisSettings::AttrDepFk(), Method::kTypeII);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.error().find(std::to_string(kMaxCoreSearchPrograms)), std::string::npos);
}

// --- The wide regime (n > kMaxSubsetPrograms): no oracle can enumerate, so
// the lattice is verified against the detector directly.

void ExpectLatticeConsistent(const MaskedDetector& detector, const SubsetReport& report,
                             Method method, const std::string& context) {
  DetectorScratch scratch = detector.MakeScratch();
  const int n = detector.num_programs();

  // Every core is non-robust and minimal: dropping any single program makes
  // it robust.
  for (const ProgramSet& core : report.cores) {
    EXPECT_FALSE(detector.IsRobust(core, method, scratch)) << context;
    for (int p : core.ToIndices()) {
      EXPECT_TRUE(detector.IsRobust(core.Without(p), method, scratch))
          << context << " core minus " << p;
    }
  }

  // Every maximal set is robust and maximal: adding any program admits a
  // counterexample.
  for (const ProgramSet& maximal : report.maximal_sets) {
    EXPECT_TRUE(detector.IsRobust(maximal, method, scratch)) << context;
    for (int p = 0; p < n; ++p) {
      if (maximal.Test(p)) continue;
      EXPECT_FALSE(detector.IsRobust(maximal.With(p), method, scratch))
          << context << " maximal plus " << p;
    }
  }

  // Core and maximal families are antichains (pairwise incomparable).
  for (size_t i = 0; i < report.cores.size(); ++i) {
    for (size_t j = 0; j < report.cores.size(); ++j) {
      if (i != j) EXPECT_FALSE(report.cores[i].ContainsAll(report.cores[j])) << context;
    }
  }
  for (size_t i = 0; i < report.maximal_sets.size(); ++i) {
    for (size_t j = 0; j < report.maximal_sets.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(report.maximal_sets[i].ContainsAll(report.maximal_sets[j])) << context;
      }
    }
  }

  // Sampled subsets: the lattice answer equals the detector's.
  std::mt19937_64 rng(20230807);
  for (int sample = 0; sample < 200; ++sample) {
    ProgramSet subset(n);
    for (int p = 0; p < n; ++p) {
      if ((rng() & 1) != 0) subset.Set(p);
    }
    if (subset.Empty()) continue;
    EXPECT_EQ(report.IsRobustSubset(subset), detector.IsRobust(subset, method, scratch))
        << context << " sample=" << sample;
  }
}

TEST(CoreSearchWideTest, AuctionN12LatticeIsDetectorConsistent) {
  Workload workload = MakeAuctionN(12);  // 24 programs: past the exhaustive cap
  ASSERT_EQ(workload.programs.size(), 24u);
  // Without the foreign-key constraints Auction(n) is non-robust (the
  // attr+FK setting is the paper's positive result and would make every
  // subset robust — a trivial lattice).
  const AnalysisSettings settings = AnalysisSettings::AttrDep();
  GraphUnderTest t = Build(workload.programs, settings);
  MaskedDetector detector(t.graph, t.ltp_range, settings.policy());
  ThreadPool pool(4);
  CoreSearchStats stats;
  Result<SubsetReport> result =
      AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, &pool, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  const SubsetReport& report = result.value();
  EXPECT_TRUE(report.from_core_search);
  EXPECT_TRUE(report.robust_masks.empty());  // past the materialization range
  EXPECT_FALSE(report.cores.empty());        // Auction(n) is never fully robust
  EXPECT_FALSE(report.maximal_sets.empty());
  // n <= 32: the mask mirror of the maximal sets is still provided.
  ASSERT_EQ(report.maximal_masks.size(), report.maximal_sets.size());
  for (size_t i = 0; i < report.maximal_sets.size(); ++i) {
    EXPECT_EQ(report.maximal_sets[i].ToMask(), report.maximal_masks[i]);
  }
  ExpectLatticeConsistent(detector, report, Method::kTypeII, "auction12");

  // The whole point: detector work is nowhere near the 2^24 - 1 sweeps the
  // exhaustive path would need.
  EXPECT_LT(stats.detector_queries, int64_t{1} << 20);
}

TEST(CoreSearchWideTest, RandomWideWorkloadsAreDetectorConsistent) {
  // Random 22-program workloads under both policies: structure-free cores.
  for (int seed : {1, 2}) {
    RandomWorkloadGen gen(seed * 9173 + 5);
    Schema schema;
    std::vector<Btp> programs = gen.Generate(schema, 22);
    for (IsolationLevel isolation : {IsolationLevel::kMvrc, IsolationLevel::kRc}) {
      const AnalysisSettings settings =
          AnalysisSettings::AttrDepFk().WithIsolation(isolation);
      GraphUnderTest t = Build(programs, settings);
      MaskedDetector detector(t.graph, t.ltp_range, settings.policy());
      ThreadPool pool(4);
      Result<SubsetReport> result =
          AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, &pool);
      ASSERT_TRUE(result.ok());
      ExpectLatticeConsistent(detector, result.value(), Method::kTypeII,
                              "wide seed=" + std::to_string(seed) + " / " + settings.name());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// --- Parallel determinism in the wide regime: the chunked parallel search
// must report the exact lattice the serial search reports (the canonicity
// argument in core_search.h), under both isolation policies, across many
// random 24-program workloads where no exhaustive oracle exists.

class CoreSearchParallelDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CoreSearchParallelDifferentialTest, WideParallelLatticeIsBitIdenticalToSerial) {
  RandomWorkloadGen gen(GetParam() * 7817 + 41);
  Schema schema;
  std::vector<Btp> programs = gen.Generate(schema, 24);
  for (IsolationLevel isolation : {IsolationLevel::kMvrc, IsolationLevel::kRc}) {
    const AnalysisSettings settings = AnalysisSettings::AttrDepFk().WithIsolation(isolation);
    const std::string context =
        "seed=" + std::to_string(GetParam()) + " / " + settings.name();
    GraphUnderTest t = Build(programs, settings);
    MaskedDetector detector(t.graph, t.ltp_range, settings.policy());
    CoreSearchStats serial_stats;
    Result<SubsetReport> serial =
        AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, nullptr, nullptr, &serial_stats);
    ASSERT_TRUE(serial.ok()) << context;
    ThreadPool pool(8);
    CoreSearchStats parallel_stats;
    Result<SubsetReport> parallel =
        AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, &pool, nullptr, &parallel_stats);
    ASSERT_TRUE(parallel.ok()) << context;
    EXPECT_EQ(parallel.value().cores, serial.value().cores) << context;
    EXPECT_EQ(parallel.value().maximal_sets, serial.value().maximal_sets) << context;
    EXPECT_EQ(parallel.value().maximal_masks, serial.value().maximal_masks) << context;
    EXPECT_EQ(parallel.value().num_threads, 8) << context;
    // Chunked extraction may change the query mix, never the accounting
    // identity.
    EXPECT_EQ(parallel_stats.detector_queries,
              parallel_stats.candidate_queries + parallel_stats.probe_queries +
                  parallel_stats.shrink_queries)
        << context;
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreSearchParallelDifferentialTest, ::testing::Range(0, 20));

// --- Safety valve.

// --- Wide verdict-cache hooks: a second search over a warm cache answers
// every query from the hooks and still produces the identical report.

TEST(CoreSearchWideHooksTest, WarmCacheAnswersEveryQuery) {
  Workload workload = MakeAuctionN(12);  // 24 programs: wide regime
  const AnalysisSettings settings = AnalysisSettings::AttrDep();
  GraphUnderTest t = Build(workload.programs, settings);
  MaskedDetector detector(t.graph, t.ltp_range, settings.policy());

  std::vector<std::pair<std::string, int64_t>> members;
  for (const Btp& program : workload.programs) members.emplace_back(program.name(), 1);
  const WideFingerprinter fingerprinter(settings.ToString(),
                                        static_cast<int>(Method::kTypeII), members);
  VerdictCache cache;
  SubsetSweepHooks hooks;
  hooks.wide_lookup = [&](const ProgramSet& subset) {
    return cache.Lookup(fingerprinter.Of(subset));
  };
  hooks.wide_store = [&](const ProgramSet& subset, bool robust) {
    cache.Store(fingerprinter.Of(subset), robust);
  };

  ThreadPool pool(4);
  CoreSearchStats cold_stats;
  Result<SubsetReport> cold =
      AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, &pool, &hooks, &cold_stats);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold_stats.detector_queries, 0);
  EXPECT_GT(cold_stats.cache_misses, 0);
  EXPECT_GT(cache.size(), 0u);

  // Warm run: every IsRobust evaluation — candidates, probes, shrink tests —
  // hits the cache; the detector is never consulted and the report is
  // unchanged.
  CoreSearchStats warm_stats;
  Result<SubsetReport> warm =
      AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, &pool, &hooks, &warm_stats);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm_stats.detector_queries, 0);
  EXPECT_EQ(warm_stats.cache_misses, 0);
  EXPECT_GT(warm_stats.cache_hits, 0);
  EXPECT_GT(warm_stats.hook_hits, 0);
  EXPECT_EQ(warm.value().cores, cold.value().cores);
  EXPECT_EQ(warm.value().maximal_sets, cold.value().maximal_sets);

  // A serial run reuses the same cache too (wide hooks are not tied to the
  // pool) — it follows a different round trajectory than the chunked
  // parallel run, so it may still pay some queries, but cached subsets
  // (every singleton core's shrink neighborhood, the full set) hit.
  CoreSearchStats serial_stats;
  Result<SubsetReport> serial =
      AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, nullptr, &hooks, &serial_stats);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial_stats.cache_hits, 0);
  EXPECT_EQ(serial.value().cores, cold.value().cores);
  EXPECT_EQ(serial.value().maximal_sets, cold.value().maximal_sets);
}

TEST(CoreSearchOptionsTest, LatticeBlowupIsAnErrorNotAnOom) {
  // SmallBank under tuple dep has three maximal robust subsets, so the
  // hitting-set family necessarily grows past a single hypothesis before the
  // search converges. (Auction would not do: its cores are singletons, so its
  // family never holds more than one set at a time.)
  Workload workload = MakeSmallBank();
  const AnalysisSettings settings = AnalysisSettings::TupleDep();
  GraphUnderTest t = Build(workload.programs, settings);
  MaskedDetector detector(t.graph, t.ltp_range, settings.policy());
  CoreSearchOptions options;
  options.max_lattice_sets = 1;  // below SmallBank's real family of 3
  Result<SubsetReport> result =
      AnalyzeSubsetsCoreGuided(detector, Method::kTypeII, nullptr, nullptr, nullptr, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("max_lattice_sets"), std::string::npos);
}

}  // namespace
}  // namespace mvrc
