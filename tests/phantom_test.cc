// The phantom problem end to end — the scenario that makes robustness with
// predicate reads hard (paper §1) and the reason inserts/deletes need
// first-class treatment.
//
// Workload: Monitor scans a relation twice with the same predicate (e.g. a
// consistency check); Register inserts one matching row. Under MVRC a
// Register committing between the two scans makes the second scan see a
// phantom, and the resulting schedule is not serializable:
//   Monitor -pred-rw-> Register (first scan missed the insert, Register
//   commits first: counterflow), Register -pred-wr-> Monitor (second scan
//   sees it) — a type-II cycle.
//
// The test verifies agreement at all three levels: the static detector
// rejects the workload, the exhaustive search produces a concrete witness,
// and the MVCC engine exhibits the anomaly in live execution.

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "engine/random_tester.h"
#include "mvcc/dependencies.h"
#include "robust/detector.h"
#include "search/counterexample.h"
#include "summary/build_summary.h"
#include "workloads/workload.h"

namespace mvrc {
namespace {

Workload MakePhantomWorkload() {
  Workload workload;
  workload.name = "Phantom";
  RelationId alerts =
      workload.schema.AddRelation("Alerts", {"id", "severity"}, {"id"});
  AttrSet severity = workload.schema.MakeAttrSet(alerts, {"severity"});

  Btp monitor("Monitor");
  monitor.AddStatement(
      Statement::PredSelect("q1", workload.schema, alerts, severity, severity));
  monitor.AddStatement(
      Statement::PredSelect("q2", workload.schema, alerts, severity, severity));
  workload.programs.push_back(std::move(monitor));
  workload.abbreviations.push_back("Mon");

  Btp register_alert("Register");
  register_alert.AddStatement(Statement::Insert("q3", workload.schema, alerts));
  workload.programs.push_back(std::move(register_alert));
  workload.abbreviations.push_back("Reg");
  return workload;
}

TEST(PhantomTest, DetectorRejectsTheWorkload) {
  Workload workload = MakePhantomWorkload();
  SummaryGraph graph =
      BuildSummaryGraph(workload.programs, AnalysisSettings::AttrDepFk());
  std::optional<TypeIIWitness> witness = FindTypeIICycle(graph);
  ASSERT_TRUE(witness.has_value());
  // The counterflow edge is the predicate rw-antidependency into the insert.
  EXPECT_TRUE(witness->e4.counterflow);
  const Statement& target =
      graph.program(witness->e4.to_program).stmt(witness->e4.to_occ);
  EXPECT_EQ(target.type(), StatementType::kInsert);
}

TEST(PhantomTest, MonitorAloneAndRegisterAloneAreRobust) {
  Workload workload = MakePhantomWorkload();
  std::vector<Btp> monitor_only{workload.programs[0]};
  std::vector<Btp> register_only{workload.programs[1]};
  EXPECT_TRUE(IsRobustAgainstMvrc(monitor_only, AnalysisSettings::AttrDepFk(),
                                  Method::kTypeII));
  EXPECT_TRUE(IsRobustAgainstMvrc(register_only, AnalysisSettings::AttrDepFk(),
                                  Method::kTypeII));
}

TEST(PhantomTest, SearchProducesConcretePhantomSchedule) {
  Workload workload = MakePhantomWorkload();
  SearchOptions options;
  options.domain_size = 1;
  std::optional<Counterexample> example =
      FindCounterexample(UnfoldAtMost2(workload.programs), options);
  ASSERT_TRUE(example.has_value());
  Schedule schedule = example->ToSchedule();
  EXPECT_TRUE(schedule.IsMvrcAllowed());
  // The witness must involve a predicate rw-antidependency to an insert.
  bool phantom_dep = false;
  for (const Dependency& dep : ComputeDependencies(schedule)) {
    if (dep.type == DepType::kPredRW &&
        schedule.op(dep.to).kind == OpKind::kInsert && dep.counterflow) {
      phantom_dep = true;
    }
  }
  EXPECT_TRUE(phantom_dep) << example->Describe(workload.schema);
}

TEST(PhantomTest, EngineExhibitsThePhantomLive) {
  Workload workload = MakePhantomWorkload();
  constexpr RelationId kAlerts = 0;
  constexpr AttrId kSeverity = 1;
  auto make_db = [&] {
    Database db(workload.schema);
    db.Seed(kAlerts, 0, {0, 3});
    return db;
  };
  auto monitor = [] {
    ConcreteProgram program;
    program.name = "Monitor";
    for (int scan = 0; scan < 2; ++scan) {
      program.steps.push_back([](EngineTxn& txn, Locals&) {
        std::vector<Row> rows;
        return txn.PredSelect(kAlerts, AttrSet{kSeverity}, AttrSet{kSeverity},
                              [](const Row& row) { return row[kSeverity] >= 2; },
                              &rows);
      });
    }
    return program;
  };
  auto register_alert = [] {
    ConcreteProgram program;
    program.name = "Register";
    program.steps.push_back([](EngineTxn& txn, Locals&) {
      Value key = txn.FreshKey(kAlerts);
      return txn.Insert(kAlerts, key, {key, 4});
    });
    return program;
  };

  RandomTestOptions options;
  options.rounds = 200;
  RandomTestReport report = RunRandomRounds(
      make_db,
      [&] { return std::vector<ConcreteProgram>{monitor(), register_alert()}; },
      options);
  // The insert lands between the two scans in a sizable fraction of rounds.
  EXPECT_GT(report.non_serializable_rounds, 0);
  ASSERT_TRUE(report.first_anomaly.has_value());
  EXPECT_NE(report.first_anomaly->find("pred-"), std::string::npos);
}

}  // namespace
}  // namespace mvrc
