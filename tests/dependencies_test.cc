#include "mvcc/dependencies.h"

#include <gtest/gtest.h>

#include "mvcc/serialization_graph.h"

namespace mvrc {
namespace {

class DependenciesTest : public ::testing::Test {
 protected:
  DependenciesTest() {
    rel_ = schema_.AddRelation("A", {"k", "v", "w"}, {"k"});
  }

  bool HasDep(const std::vector<Dependency>& deps, int from_txn, int to_txn,
              DepType type, bool counterflow) {
    for (const Dependency& dep : deps) {
      if (dep.from.txn == from_txn && dep.to.txn == to_txn && dep.type == type &&
          dep.counterflow == counterflow) {
        return true;
      }
    }
    return false;
  }

  Schema schema_;
  RelationId rel_ = -1;
};

TEST_F(DependenciesTest, WrDependencyAfterCommit) {
  // T0 writes and commits; T1 reads: wr-dependency, not counterflow.
  Transaction t0(0);
  t0.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1});
  ASSERT_TRUE(s.ok());
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kWR, false));
}

TEST_F(DependenciesTest, RwAntidependencyCanBeCounterflow) {
  // T0 reads before T1's write, but T1 commits first: counterflow rw.
  Transaction t0(0);
  t0.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  std::vector<OpRef> order{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok()) << s.error();
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kRW, true));
}

TEST_F(DependenciesTest, WwDependencyFollowsCommitOrder) {
  Transaction t0(0);
  t0.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1});
  ASSERT_TRUE(s.ok());
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kWW, false));
}

TEST_F(DependenciesTest, DisjointAttributesNoDependency) {
  // Writer touches attr 1, reader attr 2: no dependency at attribute
  // granularity, but one at tuple granularity.
  Transaction t0(0);
  t0.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kRead, rel_, 0, AttrSet{2});
  t1.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(ComputeDependencies(s.value(), Granularity::kAttribute).empty());
  EXPECT_EQ(ComputeDependencies(s.value(), Granularity::kTuple).size(), 1u);
}

TEST_F(DependenciesTest, PredicateWrDependencyFromInsert) {
  // T0 inserts, commits; T1's predicate read observes the insert: pred-wr.
  Transaction t0(0);
  t0.Add(OpKind::kInsert, rel_, 0, AttrSet::FirstN(3));
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kPredRead, rel_, -1, AttrSet{1});
  t1.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1});
  ASSERT_TRUE(s.ok());
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kPredWR, false));
}

TEST_F(DependenciesTest, PredicateRwToLaterInsertIsPhantom) {
  // T0's predicate read runs before T1 inserts a matching tuple: a phantom,
  // modeled as a predicate rw-antidependency (counterflow if T1 commits
  // first). Attribute overlap is NOT required for inserts.
  Transaction t0(0);
  t0.Add(OpKind::kPredRead, rel_, -1, AttrSet{2});  // predicate on attr w only
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kInsert, rel_, 0, AttrSet::FirstN(3));
  t1.FinishWithCommit();
  std::vector<OpRef> order{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok()) << s.error();
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kPredRW, true));
}

TEST_F(DependenciesTest, PredicateRwToPlainWriteNeedsAttrOverlap) {
  Transaction t0(0);
  t0.Add(OpKind::kPredRead, rel_, -1, AttrSet{2});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});  // writes v, predicate on w
  t1.FinishWithCommit();
  std::vector<OpRef> order{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(ComputeDependencies(s.value()).empty());
}

TEST_F(DependenciesTest, PredicateWrFromCommittedDelete) {
  // T0 deletes a tuple and commits; T1's predicate read observes the dead
  // version: a predicate wr-dependency from the delete (no attribute
  // overlap required for D-operations).
  Transaction t0(0);
  t0.Add(OpKind::kDelete, rel_, 0, AttrSet::FirstN(3));
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kPredRead, rel_, -1, AttrSet{2});
  t1.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1});
  ASSERT_TRUE(s.ok()) << s.error();
  // Vset maps the tuple to the dead version created by the delete.
  Version vset = s.value().VsetVersion({1, 0}, rel_, 0);
  EXPECT_EQ(vset.txn, 0);
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kPredWR, false));
}

TEST_F(DependenciesTest, PredicateRwToLaterDelete) {
  // T0's predicate read precedes T1's delete of a matching tuple (a
  // vanishing phantom): predicate rw-antidependency, counterflow when T1
  // commits first.
  Transaction t0(0);
  t0.Add(OpKind::kPredRead, rel_, -1, AttrSet{2});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kDelete, rel_, 0, AttrSet::FirstN(3));
  t1.FinishWithCommit();
  std::vector<OpRef> order{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, order);
  ASSERT_TRUE(s.ok()) << s.error();
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kPredRW, true));
}

TEST_F(DependenciesTest, WwIntoDeleteAndOutOfInsert) {
  // Version-chain boundary dependencies: W -> D is a ww-dependency (the
  // dead version is last); I -> W likewise (the insert is first).
  Transaction t0(0);
  t0.Add(OpKind::kInsert, rel_, 0, AttrSet::FirstN(3));
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  Transaction t2(2);
  t2.Add(OpKind::kDelete, rel_, 0, AttrSet::FirstN(3));
  t2.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1, t2});
  ASSERT_TRUE(s.ok()) << s.error();
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  EXPECT_TRUE(HasDep(deps, 0, 1, DepType::kWW, false));  // I -> W
  EXPECT_TRUE(HasDep(deps, 1, 2, DepType::kWW, false));  // W -> D
  EXPECT_TRUE(HasDep(deps, 0, 2, DepType::kWW, false));  // I -> D
}

TEST_F(DependenciesTest, Lemma41OnlyRwCanBeCounterflow) {
  // Build a batch of small mvrc schedules and check Lemma 4.1: every
  // counterflow dependency is an rw- or predicate rw-antidependency.
  Transaction t0(0);
  t0.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  int w = t0.Add(OpKind::kWrite, rel_, 1, AttrSet{1});
  t0.AddChunk(w, w);
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kPredRead, rel_, -1, AttrSet{1});
  t1.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();

  // Try all interleavings of the two transactions' operations.
  std::vector<OpRef> ops;
  for (int pos = 0; pos < t0.size(); ++pos) ops.push_back({0, pos});
  for (int pos = 0; pos < t1.size(); ++pos) ops.push_back({1, pos});
  std::sort(ops.begin(), ops.end(), [](OpRef a, OpRef b) {
    return std::tie(a.txn, a.pos) < std::tie(b.txn, b.pos);
  });
  int schedules = 0;
  do {
    Result<Schedule> s = Schedule::ReadLastCommitted({t0, t1}, ops);
    if (!s.ok() || !s.value().IsMvrcAllowed()) continue;
    ++schedules;
    for (const Dependency& dep : ComputeDependencies(s.value())) {
      if (dep.counterflow) {
        EXPECT_TRUE(dep.type == DepType::kRW || dep.type == DepType::kPredRW)
            << DescribeDependency(s.value(), schema_, dep);
      }
    }
  } while (std::next_permutation(ops.begin(), ops.end(), [](OpRef a, OpRef b) {
    return std::tie(a.txn, a.pos) < std::tie(b.txn, b.pos);
  }));
  EXPECT_GT(schedules, 0);
}

TEST_F(DependenciesTest, DescribeDependency) {
  Transaction t0(0);
  t0.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  t0.FinishWithCommit();
  Transaction t1(1);
  t1.Add(OpKind::kRead, rel_, 0, AttrSet{1});
  t1.FinishWithCommit();
  Result<Schedule> s = Schedule::Serial({t0, t1});
  ASSERT_TRUE(s.ok());
  std::vector<Dependency> deps = ComputeDependencies(s.value());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(DescribeDependency(s.value(), schema_, deps[0]),
            "W0[A#0] -wr-> R1[A#0]");
}

}  // namespace
}  // namespace mvrc
