// Empirical validation of the paper's theory (Lemma 4.1 and Theorem 4.2):
// exhaustively enumerate every mvrc-allowed schedule over pairs of
// transactions instantiated from the benchmark programs and check that
//   (1) only (predicate) rw-antidependencies are counterflow, and
//   (2) every serialization-graph cycle is a type-II cycle,
// plus Condition 6.2 / Proposition 6.3: every dependency observed in a
// schedule is witnessed by a summary-graph edge with matching flow class.

#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "btp/unfold.h"
#include "instantiate/instantiator.h"
#include "mvcc/enumerate.h"
#include "mvcc/serialization_graph.h"
#include "summary/build_summary.h"
#include "workloads/auction.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"

namespace mvrc {
namespace {

// Visits every structurally valid schedule (continuing enumeration).
void ForEachSchedule(const std::vector<Transaction>& txns,
                     const std::function<void(const Schedule&)>& visit) {
  mvrc::ForEachSchedule(txns, [&visit](const Schedule& schedule) {
    visit(schedule);
    return true;
  });
}

struct WorkloadCase {
  std::string name;
  Workload (*make)();
};

class TheoremValidation : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(TheoremValidation, Lemma41AndTheorem42OnAllPairSchedules) {
  Workload workload = GetParam().make();
  std::vector<Ltp> ltps = UnfoldAtMost2(workload.programs);
  SummaryGraph summary =
      BuildSummaryGraph(UnfoldAtMost2(workload.programs), AnalysisSettings::AttrDepFk());

  // Map an operation back to its program/occurrence via position matching:
  // instantiation appends operations occurrence by occurrence, so track it
  // by regenerating with markers. Here we only need dependency-level
  // checks, so no mapping is required for Lemma 4.1 / Theorem 4.2.
  long schedules_checked = 0;
  long mvrc_allowed = 0;
  long cyclic = 0;

  for (size_t p1 = 0; p1 < ltps.size(); ++p1) {
    for (size_t p2 = p1; p2 < ltps.size(); ++p2) {
      if (ltps[p1].empty() || ltps[p2].empty()) continue;
      // Keep the enumeration bounded: skip very long programs (TPC-C
      // two-iteration unfoldings); pairs up to ~14 operations are plenty.
      if (ltps[p1].size() + ltps[p2].size() > 9) continue;
      std::vector<std::vector<StatementBinding>> b1 =
          EnumerateBindings(ltps[p1], 2, /*enumerate_pred_subsets=*/false);
      std::vector<std::vector<StatementBinding>> b2 =
          EnumerateBindings(ltps[p2], 2, /*enumerate_pred_subsets=*/false);
      for (const auto& binding1 : b1) {
        for (const auto& binding2 : b2) {
          std::optional<Transaction> t1 = InstantiateLtp(ltps[p1], binding1, 0);
          std::optional<Transaction> t2 = InstantiateLtp(ltps[p2], binding2, 1);
          if (!t1 || !t2) continue;
          ForEachSchedule({*t1, *t2}, [&](const Schedule& schedule) {
            ++schedules_checked;
            if (!schedule.IsMvrcAllowed()) return;
            ++mvrc_allowed;
            SerializationGraph graph = SerializationGraph::Build(schedule);
            // Lemma 4.1.
            for (const Dependency& dep : graph.dependencies()) {
              if (dep.counterflow) {
                EXPECT_TRUE(dep.type == DepType::kRW || dep.type == DepType::kPredRW)
                    << DescribeDependency(schedule, workload.schema, dep);
              }
            }
            // Theorem 4.2.
            if (!graph.IsConflictSerializable()) {
              ++cyclic;
              EXPECT_TRUE(graph.AllCyclesTypeII())
                  << schedule.ToString(workload.schema);
            }
          });
        }
      }
    }
  }
  EXPECT_GT(schedules_checked, 0);
  EXPECT_GT(mvrc_allowed, 0);
  // Sanity note: cyclic mvrc-allowed schedules exist for the non-robust
  // workloads; for robust ones, zero is expected.
  (void)cyclic;
}

INSTANTIATE_TEST_SUITE_P(Workloads, TheoremValidation,
                         ::testing::Values(WorkloadCase{"Auction", &MakeAuction},
                                           WorkloadCase{"SmallBank", &MakeSmallBank},
                                           WorkloadCase{"Tpcc", &MakeTpcc}),
                         [](const ::testing::TestParamInfo<WorkloadCase>& info) {
                           return info.param.name;
                         });

TEST(Condition62Test, DependenciesWitnessedBySummaryEdges) {
  // Proposition 6.3: every dependency in an mvrc-allowed schedule between
  // instantiations of two programs is witnessed by a summary edge with the
  // same flow class. We instrument the instantiation by matching operations
  // to occurrences through relation/tuple/kind bookkeeping on Auction.
  Workload workload = MakeAuction();
  std::vector<Ltp> ltps = UnfoldAtMost2(workload.programs);
  SummaryGraph summary = BuildSummaryGraph(UnfoldAtMost2(workload.programs),
                                           AnalysisSettings::AttrDepFk());

  // Occurrence provenance: regenerate each transaction op-by-op, tagging the
  // occurrence index that produced it (mirrors InstantiateLtp's op layout).
  auto occurrence_of = [&](const Ltp& ltp, const std::vector<StatementBinding>& bindings,
                           const Transaction& txn) {
    std::vector<int> occ_of_pos(txn.size(), -1);
    int cursor = 0;
    std::set<std::pair<RelationId, int>> seen_reads;
    for (int occ = 0; occ < ltp.size(); ++occ) {
      const Statement& stmt = ltp.stmt(occ);
      auto mark = [&](int count) {
        for (int i = 0; i < count; ++i) occ_of_pos[cursor++] = occ;
      };
      switch (stmt.type()) {
        case StatementType::kInsert:
        case StatementType::kKeyDelete:
          mark(1);
          break;
        case StatementType::kKeySelect: {
          if (seen_reads.insert({stmt.rel(), bindings[occ].tuple}).second) mark(1);
          break;
        }
        case StatementType::kKeyUpdate: {
          if (seen_reads.insert({stmt.rel(), bindings[occ].tuple}).second) mark(1);
          mark(1);
          break;
        }
        case StatementType::kPredSelect: {
          mark(1);  // PR
          for (int t : bindings[occ].pred_tuples) {
            if (seen_reads.insert({stmt.rel(), t}).second) mark(1);
          }
          break;
        }
        case StatementType::kPredUpdate: {
          mark(1);
          for (int t : bindings[occ].pred_tuples) {
            if (seen_reads.insert({stmt.rel(), t}).second) mark(1);
            mark(1);
          }
          break;
        }
        case StatementType::kPredDelete: {
          mark(1);
          mark(static_cast<int>(bindings[occ].pred_tuples.size()));
          break;
        }
      }
    }
    return occ_of_pos;
  };

  long dependencies_checked = 0;
  for (size_t p1 = 0; p1 < ltps.size(); ++p1) {
    for (size_t p2 = 0; p2 < ltps.size(); ++p2) {
      std::vector<std::vector<StatementBinding>> b1 = EnumerateBindings(ltps[p1], 2, true);
      std::vector<std::vector<StatementBinding>> b2 = EnumerateBindings(ltps[p2], 2, true);
      for (const auto& binding1 : b1) {
        for (const auto& binding2 : b2) {
          std::optional<Transaction> t1 = InstantiateLtp(ltps[p1], binding1, 0);
          std::optional<Transaction> t2 = InstantiateLtp(ltps[p2], binding2, 1);
          if (!t1 || !t2) continue;
          std::vector<int> occ1 = occurrence_of(ltps[p1], binding1, *t1);
          std::vector<int> occ2 = occurrence_of(ltps[p2], binding2, *t2);
          ForEachSchedule({*t1, *t2}, [&](const Schedule& schedule) {
            if (!schedule.IsMvrcAllowed()) return;
            for (const Dependency& dep : ComputeDependencies(schedule)) {
              if (dep.from.txn == dep.to.txn) continue;
              ++dependencies_checked;
              const std::vector<int>& from_occ = dep.from.txn == 0 ? occ1 : occ2;
              const std::vector<int>& to_occ = dep.to.txn == 0 ? occ1 : occ2;
              int fp = dep.from.txn == 0 ? static_cast<int>(p1) : static_cast<int>(p2);
              int tp = dep.to.txn == 0 ? static_cast<int>(p1) : static_cast<int>(p2);
              bool witnessed = false;
              for (const SummaryEdge& edge : summary.edges()) {
                if (edge.from_program == fp && edge.to_program == tp &&
                    edge.from_occ == from_occ[dep.from.pos] &&
                    edge.to_occ == to_occ[dep.to.pos] &&
                    edge.counterflow == dep.counterflow) {
                  witnessed = true;
                  break;
                }
              }
              EXPECT_TRUE(witnessed)
                  << DescribeDependency(schedule, workload.schema, dep) << " in "
                  << schedule.ToString(workload.schema) << " (" << ltps[p1].name()
                  << " vs " << ltps[p2].name() << ")";
            }
          });
        }
      }
    }
  }
  EXPECT_GT(dependencies_checked, 0);
}

}  // namespace
}  // namespace mvrc
