// The zero-dependency JSON reader/writer behind the service protocol:
// construction, deterministic dumping, parsing, round trips, malformed-input
// rejection — plus a protocol-level smoke test driving mvrcd request
// strings through HandleRequestLine.

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/protocol.h"
#include "service/session_manager.h"
#include "util/json.h"

namespace mvrc {
namespace {

TEST(JsonTest, BuildAndDump) {
  Json json = Json::Object();
  json.Set("null", Json::Null());
  json.Set("yes", Json::Bool(true));
  json.Set("count", Json::Int(42));
  json.Set("pi", Json::Number(3.25));
  json.Set("name", Json::Str("mvrc"));
  Json array = Json::Array();
  array.Append(Json::Int(1)).Append(Json::Int(-2)).Append(Json::Str("x"));
  json.Set("items", std::move(array));
  EXPECT_EQ(json.Dump(),
            R"({"null":null,"yes":true,"count":42,"pi":3.25,"name":"mvrc","items":[1,-2,"x"]})");
}

TEST(JsonTest, SetOverwritesInPlaceKeepingOrder) {
  Json json = Json::Object();
  json.Set("a", Json::Int(1));
  json.Set("b", Json::Int(2));
  json.Set("a", Json::Int(3));
  EXPECT_EQ(json.Dump(), R"({"a":3,"b":2})");
}

TEST(JsonTest, StringEscaping) {
  Json json = Json::Str("quote\" backslash\\ newline\n tab\t bell\x07");
  EXPECT_EQ(json.Dump(), "\"quote\\\" backslash\\\\ newline\\n tab\\t bell\\u0007\"");
  // UTF-8 passes through unescaped.
  EXPECT_EQ(Json::Str("caf\xC3\xA9").Dump(), "\"caf\xC3\xA9\"");
}

TEST(JsonTest, IntegralNumbersDumpWithoutFraction) {
  EXPECT_EQ(Json::Number(7.0).Dump(), "7");
  EXPECT_EQ(Json::Number(-0.5).Dump(), "-0.5");
  EXPECT_EQ(Json::Int(int64_t{1} << 40).Dump(), "1099511627776");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_EQ(Json::Parse("true").value().bool_value(), true);
  EXPECT_EQ(Json::Parse("false").value().bool_value(), false);
  EXPECT_EQ(Json::Parse("42").value().int_value(), 42);
  EXPECT_EQ(Json::Parse("-17").value().int_value(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5e2").value().number_value(), 250.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-0.125").value().number_value(), -0.125);
  EXPECT_EQ(Json::Parse("0").value().int_value(), 0);
  EXPECT_EQ(Json::Parse("\"hi\"").value().string_value(), "hi");
  EXPECT_EQ(Json::Parse("  \t\n 1 \r\n ").value().int_value(), 1);
}

TEST(JsonTest, ParseEscapesAndUnicode) {
  EXPECT_EQ(Json::Parse(R"("a\"b\\c\/d\be\ff\ng\rh\ti")").value().string_value(),
            "a\"b\\c/d\be\ff\ng\rh\ti");
  EXPECT_EQ(Json::Parse(R"("\u0041")").value().string_value(), "A");
  EXPECT_EQ(Json::Parse(R"("\u00e9")").value().string_value(), "\xC3\xA9");
  EXPECT_EQ(Json::Parse(R"("\u20ac")").value().string_value(), "\xE2\x82\xAC");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::Parse(R"("\ud83d\ude00")").value().string_value(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, IntValueClampsOutOfRangeNumbers) {
  EXPECT_EQ(Json::Parse("1e300").value().int_value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(Json::Parse("-1e300").value().int_value(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(Json::Parse("1e18").value().int_value(), 1'000'000'000'000'000'000);
}

TEST(JsonTest, ParseContainers) {
  Json parsed = Json::Parse(R"({"a":[1,2,{"b":null}],"c":{"d":[[]]}})").value();
  ASSERT_TRUE(parsed.is_object());
  ASSERT_NE(parsed.Find("a"), nullptr);
  EXPECT_EQ(parsed.Find("a")->size(), 3);
  EXPECT_TRUE(parsed.Find("a")->at(2).Find("b")->is_null());
  EXPECT_EQ(parsed.Find("c")->Find("d")->at(0).size(), 0);
  EXPECT_EQ(parsed.Find("missing"), nullptr);
}

TEST(JsonTest, DuplicateKeysLastWins) {
  EXPECT_EQ(Json::Parse(R"({"k":1,"k":2})").value().GetInt("k"), 2);
}

TEST(JsonTest, RoundTrip) {
  const std::vector<std::string> documents = {
      "null",
      "[]",
      "{}",
      R"({"a":1,"b":[true,false,null],"c":"x\ny","d":-2.5})",
      R"([[[["deep"]]],{"k":{"l":{"m":0}}}])",
  };
  for (const std::string& document : documents) {
    Result<Json> first = Json::Parse(document);
    ASSERT_TRUE(first.ok()) << document;
    std::string dumped = first.value().Dump();
    EXPECT_EQ(dumped, document);
    Result<Json> second = Json::Parse(dumped);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(first.value() == second.value()) << document;
  }
}

TEST(JsonTest, MalformedInputsAreErrorsNotCrashes) {
  const std::vector<std::string> inputs = {
      "",            "   ",          "{",          "[",           "\"unterminated",
      "tru",         "nul",          "+1",         "01",          "1.",
      "1e",          ".5",           "nan",        "Infinity",    "[1,]",
      "[1 2]",       "{\"a\" 1}",    "{\"a\":}",   "{a:1}",       "{'a':1}",
      "[1]extra",    "\"bad\\x\"",   "\"\\u12\"",  "\"\\ud800\"", "\"\\ud800\\u0041\"",
      "\"\\udc00\"", "\"ctrl\x01\"", "{\"k\":01}",
  };
  for (const std::string& input : inputs) {
    Result<Json> parsed = Json::Parse(input);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << input;
    if (!parsed.ok()) {
      EXPECT_NE(parsed.error().find("json parse error"), std::string::npos);
    }
  }
}

TEST(JsonTest, NestingDepthIsBounded) {
  std::string deep;
  for (int i = 0; i < Json::kMaxDepth + 10; ++i) deep += "[";
  EXPECT_FALSE(Json::Parse(deep).ok());
  // kMaxDepth itself parses fine.
  std::string ok_depth;
  for (int i = 0; i < Json::kMaxDepth; ++i) ok_depth += "[";
  for (int i = 0; i < Json::kMaxDepth; ++i) ok_depth += "]";
  EXPECT_TRUE(Json::Parse(ok_depth).ok());
}

TEST(JsonTest, ConvenienceLookups) {
  Json json = Json::Parse(R"({"s":"text","n":7,"b":true})").value();
  EXPECT_EQ(json.GetString("s"), "text");
  EXPECT_EQ(json.GetString("n", "fallback"), "fallback");  // wrong kind
  EXPECT_EQ(json.GetInt("n"), 7);
  EXPECT_EQ(json.GetInt("s", -1), -1);
  EXPECT_TRUE(json.GetBool("b"));
  EXPECT_FALSE(json.GetBool("missing"));
}

// --- Protocol-level smoke test: the request strings a client would pipe
// into mvrcd, driven through the same entry point the daemon loop uses.

std::string Respond(SessionManager& manager, const std::string& line) {
  return HandleRequestLine(manager, line);
}

TEST(ProtocolTest, ScriptedSessionSmoke) {
  SessionManager manager(2);

  Json load = Json::Parse(Respond(manager,
                                  R"({"cmd":"load_sql","session":"sb","builtin":"smallbank"})"))
                  .value();
  EXPECT_TRUE(load.GetBool("ok"));
  EXPECT_EQ(load.GetInt("num_programs"), 5);
  EXPECT_EQ(load.Find("programs")->size(), 5);

  Json check = Json::Parse(Respond(manager, R"({"cmd":"check","session":"sb"})")).value();
  EXPECT_TRUE(check.GetBool("ok"));
  // SmallBank as a whole is not robust under attr dep + FK (paper §7.2);
  // the witness is included on the fresh, uncached verdict.
  EXPECT_FALSE(check.GetBool("robust"));
  EXPECT_FALSE(check.GetBool("cached"));
  EXPECT_NE(check.Find("witness"), nullptr);

  Json again = Json::Parse(Respond(manager, R"({"cmd":"check","session":"sb"})")).value();
  EXPECT_TRUE(again.GetBool("cached"));

  Json subsets = Json::Parse(Respond(manager, R"({"cmd":"subsets","session":"sb"})")).value();
  EXPECT_TRUE(subsets.GetBool("ok"));
  EXPECT_EQ(subsets.GetInt("num_robust_subsets"), 10);  // Figure 6, attr+FK row
  EXPECT_EQ(subsets.Find("maximal")->size(), 3);

  Json removed =
      Json::Parse(Respond(manager, R"({"cmd":"remove_program","session":"sb","name":"Balance"})"))
          .value();
  EXPECT_TRUE(removed.GetBool("ok"));
  EXPECT_EQ(removed.GetInt("num_programs"), 4);

  // The 4-program verdict was already evaluated during the subset sweep, so
  // the incremental re-check is a pure cache hit.
  Json recheck = Json::Parse(Respond(manager, R"({"cmd":"check","session":"sb"})")).value();
  EXPECT_TRUE(recheck.GetBool("ok"));
  EXPECT_TRUE(recheck.GetBool("cached"));

  Json stats = Json::Parse(Respond(manager, R"({"cmd":"stats","session":"sb"})")).value();
  EXPECT_TRUE(stats.GetBool("ok"));
  EXPECT_EQ(stats.GetInt("programs_added"), 5);
  EXPECT_EQ(stats.GetInt("programs_removed"), 1);
  EXPECT_GT(stats.GetInt("verdict_cache_hits"), 0);

  Json global = Json::Parse(Respond(manager, R"({"cmd":"stats"})")).value();
  EXPECT_TRUE(global.GetBool("ok"));
  EXPECT_EQ(global.GetInt("num_threads"), 2);
  EXPECT_EQ(global.Find("sessions")->size(), 1);

  Json dropped =
      Json::Parse(Respond(manager, R"({"cmd":"drop_session","session":"sb"})")).value();
  EXPECT_TRUE(dropped.GetBool("dropped"));
  EXPECT_EQ(Json::Parse(Respond(manager, R"({"cmd":"stats"})")).value().Find("sessions")->size(),
            0);
}

TEST(ProtocolTest, AddReplaceCounterexampleFlow) {
  SessionManager manager(1);
  Json load = Json::Parse(Respond(manager,
                                  R"({"cmd":"load_sql","session":"a","builtin":"auction"})"))
                  .value();
  ASSERT_TRUE(load.GetBool("ok"));

  // Incremental SQL add against the builtin-loaded schema.
  const std::string count_calls_sql =
      R"(PROGRAM CountCalls(:B): SELECT calls FROM Buyer WHERE id = :B; COMMIT;)";
  Json added =
      Json::Parse(Respond(manager, R"({"cmd":"add_program","session":"a","sql":")" +
                                       count_calls_sql + R"("})"))
          .value();
  EXPECT_TRUE(added.GetBool("ok"));
  EXPECT_EQ(added.GetInt("num_programs"), 3);

  Json replaced =
      Json::Parse(Respond(manager, R"({"cmd":"replace_program","session":"a","sql":")" +
                                       count_calls_sql + R"("})"))
          .value();
  EXPECT_TRUE(replaced.GetBool("ok"));
  EXPECT_EQ(replaced.GetInt("num_programs"), 3);

  // The full auction workload is robust (Figure 6): a tightly bounded
  // search finds nothing.
  const std::string bounded_search =
      R"({"cmd":"counterexample","session":"a","max_txns":2,"max_schedules":20000})";
  Json clean = Json::Parse(Respond(manager, bounded_search)).value();
  EXPECT_TRUE(clean.GetBool("ok"));
  EXPECT_FALSE(clean.GetBool("found"));

  // WriteCheck alone is certified non-robust with a tiny search space
  // (certify_test.cc): the protocol path surfaces the schedule.
  ASSERT_TRUE(Json::Parse(Respond(manager,
                                  R"({"cmd":"load_sql","session":"wc","builtin":"smallbank"})"))
                  .value()
                  .GetBool("ok"));
  for (const char* name : {"Amalgamate", "Balance", "DepositChecking", "TransactSavings"}) {
    std::string request = R"({"cmd":"remove_program","session":"wc","name":")" +
                          std::string(name) + R"("})";
    ASSERT_TRUE(Json::Parse(Respond(manager, request)).value().GetBool("ok")) << name;
  }
  Json counterexample = Json::Parse(
                            Respond(manager,
                                    R"({"cmd":"counterexample","session":"wc","domain_size":1})"))
                            .value();
  EXPECT_TRUE(counterexample.GetBool("ok"));
  EXPECT_TRUE(counterexample.GetBool("found"));
  EXPECT_NE(counterexample.Find("description"), nullptr);
}

TEST(ProtocolTest, ErrorResponsesNeverAbort) {
  SessionManager manager(1);
  const std::vector<std::string> bad_requests = {
      "not json at all",
      "[]",
      R"({"no_cmd":1})",
      R"({"cmd":"bogus"})",
      R"({"cmd":"check"})",                                // missing session
      R"({"cmd":"check","session":"missing"})",            // unknown session
      R"({"cmd":"load_sql","session":"s"})",               // missing sql/builtin
      R"({"cmd":"load_sql","session":"s","builtin":"x"})",
      R"({"cmd":"load_sql","session":"s","settings":"zzz","builtin":"tpcc"})",
      R"({"cmd":"load_sql","session":"s","sql":"TABLE ("})",      // parse error
      R"({"cmd":"load_sql","session":"fresh","sql":"TABLE ("})",  // would-be new session
      R"({"cmd":"remove_program","session":"s2"})",
      R"({"cmd":"check","session":"s","method":"type3"})",
      R"({"cmd":"counterexample","session":"s","max_txns":0})",
      R"({"cmd":"counterexample","session":"s","max_schedules":1e300})",
      R"({"cmd":"counterexample","session":"s","domain_size":99})",
  };
  // Make "s" exist for the requests that need a live session.
  Respond(manager, R"({"cmd":"load_sql","session":"s","builtin":"smallbank"})");
  for (const std::string& request : bad_requests) {
    Json response = Json::Parse(Respond(manager, request)).value();
    EXPECT_FALSE(response.GetBool("ok", true)) << request;
    EXPECT_NE(response.Find("error"), nullptr) << request;
  }

  // Failed first loads must not leak empty sessions: only "s" (loaded
  // successfully above) exists afterwards.
  Json sessions = Json::Parse(Respond(manager, R"({"cmd":"stats"})")).value();
  ASSERT_EQ(sessions.Find("sessions")->size(), 1);
  EXPECT_EQ(sessions.Find("sessions")->at(0).string_value(), "s");
}

}  // namespace
}  // namespace mvrc
