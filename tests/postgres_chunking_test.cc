// §5.4's Postgres-flavoured instantiation of predicate updates: two chunks
// (a bare predicate read, then the conventional predicate read + writes).
// The paper argues this changes neither the dependency types between
// statements nor the summary graph; these tests check the instantiation
// shape, that the schedule-level theorems keep holding on the enlarged
// schedule space, and that the split admits strictly more interleavings.

#include <gtest/gtest.h>

#include "instantiate/instantiator.h"
#include "mvcc/enumerate.h"
#include "mvcc/serialization_graph.h"
#include "workloads/workload.h"

namespace mvrc {
namespace {

class PostgresChunkingTest : public ::testing::Test {
 protected:
  PostgresChunkingTest() {
    rel_ = schema_.AddRelation("R", {"k", "v"}, {"k"});
    Btp sweeper("Sweep");
    sweeper.AddStatement(Statement::PredUpdate("q1", schema_, rel_, AttrSet{1},
                                               AttrSet{}, AttrSet{1}));
    std::vector<Occurrence> occs{{sweeper.statement(0), 0, {}}};
    sweep_ = std::make_unique<Ltp>("Sweep", "Sweep", occs,
                                   std::vector<OccFkConstraint>{});
  }

  Schema schema_;
  RelationId rel_ = -1;
  std::unique_ptr<Ltp> sweep_;
};

TEST_F(PostgresChunkingTest, SplitProducesTwoPredicateReads) {
  std::vector<StatementBinding> binding(1);
  binding[0].pred_tuples = {0, 1};

  std::optional<Transaction> single =
      InstantiateLtp(*sweep_, binding, 0, 0, PredUpdateChunking::kSingleChunk);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->ToString(schema_),
            "PR0[R]R0[R#0]W0[R#0]R0[R#1]W0[R#1]C0");
  ASSERT_EQ(single->chunks().size(), 1u);
  EXPECT_EQ(single->chunks()[0], std::make_pair(0, 4));

  std::optional<Transaction> split =
      InstantiateLtp(*sweep_, binding, 0, 0, PredUpdateChunking::kPostgresSplit);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->ToString(schema_),
            "PR0[R]PR0[R]R0[R#0]W0[R#0]R0[R#1]W0[R#1]C0");
  // The bare PR stands alone; the conventional chunk covers positions 1-5.
  ASSERT_EQ(split->chunks().size(), 1u);
  EXPECT_EQ(split->chunks()[0], std::make_pair(1, 5));
  EXPECT_TRUE(split->Validate().ok());
}

TEST_F(PostgresChunkingTest, SplitAdmitsMoreSchedules) {
  std::vector<StatementBinding> binding(1);
  binding[0].pred_tuples = {0};
  Transaction writer(1);
  writer.Add(OpKind::kWrite, rel_, 0, AttrSet{1});
  writer.FinishWithCommit();

  std::optional<Transaction> single =
      InstantiateLtp(*sweep_, binding, 0, 0, PredUpdateChunking::kSingleChunk);
  std::optional<Transaction> split =
      InstantiateLtp(*sweep_, binding, 0, 0, PredUpdateChunking::kPostgresSplit);
  ASSERT_TRUE(single.has_value() && split.has_value());

  long single_count =
      ForEachMvrcSchedule({*single, writer}, [](const Schedule&) { return true; });
  long split_count =
      ForEachMvrcSchedule({*split, writer}, [](const Schedule&) { return true; });
  EXPECT_GT(split_count, single_count);
}

TEST_F(PostgresChunkingTest, TheoremsHoldOnSplitSchedules) {
  // Lemma 4.1 and Theorem 4.2 are properties of mvrc schedules in general —
  // they must survive the enlarged interleaving space.
  std::vector<StatementBinding> binding(1);
  binding[0].pred_tuples = {0, 1};
  std::optional<Transaction> t0 =
      InstantiateLtp(*sweep_, binding, 0, 0, PredUpdateChunking::kPostgresSplit);
  ASSERT_TRUE(t0.has_value());
  std::vector<StatementBinding> binding2(1);
  binding2[0].pred_tuples = {1};
  std::optional<Transaction> t1 =
      InstantiateLtp(*sweep_, binding2, 1, 0, PredUpdateChunking::kPostgresSplit);
  ASSERT_TRUE(t1.has_value());
  // Renumber t1's id is already 1.
  long checked = ForEachMvrcSchedule({*t0, *t1}, [&](const Schedule& schedule) {
    SerializationGraph graph = SerializationGraph::Build(schedule);
    for (const Dependency& dep : graph.dependencies()) {
      if (dep.counterflow) {
        EXPECT_TRUE(dep.type == DepType::kRW || dep.type == DepType::kPredRW);
      }
    }
    if (!graph.IsConflictSerializable()) {
      EXPECT_TRUE(graph.AllCyclesTypeII()) << schedule.ToString(schema_);
    }
    return true;
  });
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace mvrc
