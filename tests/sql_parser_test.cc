#include "sql/parser.h"

#include <gtest/gtest.h>

namespace mvrc {
namespace {

SqlWorkloadFile MustParse(const std::string& source) {
  Result<SqlWorkloadFile> result = ParseSql(source);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.ok() ? std::move(result).value() : SqlWorkloadFile{};
}

TEST(SqlParserTest, TableDeclaration) {
  SqlWorkloadFile file = MustParse("TABLE T(a, b, c, PRIMARY KEY(a, b));");
  ASSERT_EQ(file.tables.size(), 1u);
  EXPECT_EQ(file.tables[0].name, "T");
  EXPECT_EQ(file.tables[0].attrs, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(file.tables[0].primary_key, (std::vector<std::string>{"a", "b"}));
}

TEST(SqlParserTest, TableWithoutPrimaryKey) {
  SqlWorkloadFile file = MustParse("TABLE H(x, y);");
  ASSERT_EQ(file.tables.size(), 1u);
  EXPECT_TRUE(file.tables[0].primary_key.empty());
}

TEST(SqlParserTest, ForeignKeyDeclaration) {
  SqlWorkloadFile file = MustParse(
      "TABLE P(p, PRIMARY KEY(p)); TABLE C(c, p, PRIMARY KEY(c));"
      "FOREIGN KEY f: C(p) REFERENCES P;");
  ASSERT_EQ(file.foreign_keys.size(), 1u);
  EXPECT_EQ(file.foreign_keys[0].name, "f");
  EXPECT_EQ(file.foreign_keys[0].child, "C");
  EXPECT_EQ(file.foreign_keys[0].child_columns, std::vector<std::string>{"p"});
  EXPECT_EQ(file.foreign_keys[0].parent, "P");
}

TEST(SqlParserTest, SelectStatement) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P(:k):\n"
      "SELECT a, b INTO :x, :y FROM T WHERE k = :k AND a >= 10;\n"
      "COMMIT;");
  ASSERT_EQ(file.programs.size(), 1u);
  const SqlProgram& program = file.programs[0];
  EXPECT_EQ(program.name, "P");
  EXPECT_EQ(program.params, std::vector<std::string>{"k"});
  ASSERT_EQ(program.body.items.size(), 1u);
  const SqlStatement& stmt = program.body.items[0].statement;
  EXPECT_EQ(stmt.type, SqlStatement::Type::kSelect);
  EXPECT_EQ(stmt.relation, "T");
  EXPECT_EQ(stmt.select_columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(stmt.into_params, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(stmt.where.conjuncts.size(), 2u);
  EXPECT_EQ(stmt.where.conjuncts[0].op, "=");
  EXPECT_EQ(stmt.where.conjuncts[1].op, ">=");
}

TEST(SqlParserTest, UpdateWithReturning) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\n"
      "UPDATE T SET a = a + :v, b = 0 WHERE k = :k RETURNING c INTO :c;\n"
      "COMMIT;");
  const SqlStatement& stmt = file.programs[0].body.items[0].statement;
  EXPECT_EQ(stmt.type, SqlStatement::Type::kUpdate);
  ASSERT_EQ(stmt.assignments.size(), 2u);
  EXPECT_EQ(stmt.assignments[0].column, "a");
  ASSERT_EQ(stmt.assignments[0].expr.size(), 2u);
  EXPECT_EQ(stmt.assignments[0].expr[1].kind, SqlOperand::Kind::kParam);
  EXPECT_EQ(stmt.returning_columns, std::vector<std::string>{"c"});
  EXPECT_EQ(stmt.returning_into, std::vector<std::string>{"c"});
}

TEST(SqlParserTest, InsertStatement) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\nINSERT INTO T VALUES (:a, 5, :c);\nCOMMIT;");
  const SqlStatement& stmt = file.programs[0].body.items[0].statement;
  EXPECT_EQ(stmt.type, SqlStatement::Type::kInsert);
  ASSERT_EQ(stmt.values.size(), 3u);
  EXPECT_EQ(stmt.values[1][0].kind, SqlOperand::Kind::kNumber);
}

TEST(SqlParserTest, DeleteStatement) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\nDELETE FROM T WHERE k = :k;\nCOMMIT;");
  EXPECT_EQ(file.programs[0].body.items[0].statement.type,
            SqlStatement::Type::kDelete);
}

TEST(SqlParserTest, IfWithoutElse) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\n"
      "IF :a < :b THEN\n  DELETE FROM T WHERE k = :k;\nEND IF;\n"
      "COMMIT;");
  const SqlBlockItem& item = file.programs[0].body.items[0];
  EXPECT_EQ(item.kind, SqlBlockItem::Kind::kIf);
  EXPECT_FALSE(item.has_else);
  EXPECT_EQ(item.then_block.items.size(), 1u);
}

TEST(SqlParserTest, IfWithElseAndOpaqueCondition) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\n"
      "IF ? THEN\n  DELETE FROM T WHERE k = :k;\n"
      "ELSE\n  DELETE FROM U WHERE k = :k;\nEND IF;\n"
      "COMMIT;");
  const SqlBlockItem& item = file.programs[0].body.items[0];
  EXPECT_TRUE(item.has_else);
  EXPECT_EQ(item.else_block.items[0].statement.relation, "U");
}

TEST(SqlParserTest, LoopAndNesting) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\n"
      "LOOP\n"
      "  DELETE FROM T WHERE k = :k;\n"
      "  IF ? THEN\n    DELETE FROM U WHERE k = :k;\n  END IF;\n"
      "END LOOP;\n"
      "COMMIT;");
  const SqlBlockItem& loop = file.programs[0].body.items[0];
  EXPECT_EQ(loop.kind, SqlBlockItem::Kind::kLoop);
  ASSERT_EQ(loop.loop_block.items.size(), 2u);
  EXPECT_EQ(loop.loop_block.items[1].kind, SqlBlockItem::Kind::kIf);
}

TEST(SqlParserTest, ParenthesizedExpressions) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\n"
      "UPDATE T SET a = (b + :v) * 2 WHERE k = :k;\n"
      "COMMIT;");
  const SqlStatement& stmt = file.programs[0].body.items[0].statement;
  ASSERT_EQ(stmt.assignments.size(), 1u);
  // Operands flattened: b, :v, 2.
  ASSERT_EQ(stmt.assignments[0].expr.size(), 3u);
  EXPECT_EQ(stmt.assignments[0].expr[0].kind, SqlOperand::Kind::kColumn);
  EXPECT_EQ(stmt.assignments[0].expr[1].kind, SqlOperand::Kind::kParam);
  EXPECT_EQ(stmt.assignments[0].expr[2].kind, SqlOperand::Kind::kNumber);
}

TEST(SqlParserTest, ParenthesizedIfCondition) {
  SqlWorkloadFile file = MustParse(
      "PROGRAM P():\n"
      "IF (:a + :b) < :v THEN\n  DELETE FROM T WHERE k = :k;\nEND IF;\n"
      "COMMIT;");
  EXPECT_EQ(file.programs[0].body.items[0].kind, SqlBlockItem::Kind::kIf);
}

TEST(SqlParserTest, RejectsUnbalancedParens) {
  EXPECT_FALSE(
      ParseSql("PROGRAM P():\nUPDATE T SET a = (b + :v WHERE k = :k;\nCOMMIT;").ok());
}

TEST(SqlParserTest, ErrorsCarryLineNumbers) {
  Result<SqlWorkloadFile> result = ParseSql("PROGRAM P():\nSELECT FROM T;\nCOMMIT;");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("line 2"), std::string::npos);
}

TEST(SqlParserTest, RejectsMismatchedInto) {
  EXPECT_FALSE(
      ParseSql("PROGRAM P():\nSELECT a, b INTO :x FROM T WHERE k = :k;\nCOMMIT;").ok());
}

TEST(SqlParserTest, RejectsMissingCommit) {
  EXPECT_FALSE(ParseSql("PROGRAM P():\nDELETE FROM T WHERE k = :k;").ok());
}

}  // namespace
}  // namespace mvrc
