#!/usr/bin/env python3
"""Network chaos smoke test for the mvrcd TCP front end.

Four phases, every one against a real mvrcd process over a real socket:

  1. fault-points: for each net.* fault point, run a small client fleet with
     retry/backoff against a daemon armed with that point, assert every
     client still converges on verdicts byte-identical to a stdio reference,
     and assert the point actually fired (its metric counter moved).
  2. connection-chaos: clients repeatedly kill their own connection
     mid-request, reconnect, and retry with a fresh session; verdicts must
     match the reference and the daemon must survive the whole ordeal.
  3. kill-under-load: a durable daemon takes a scripted mutation sequence
     while background clients hammer checks; SIGKILL mid-stream; a restart
     on the same --state-dir must recover a state matching some acknowledged
     prefix of the sequence (verdicts compared against stdio references).
  4. drain: SIGTERM with a response still owed must deliver that response,
     close cleanly, and exit 0.

Usage: scripts/net_chaos_smoke.py [--mvrcd build/mvrcd]
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

WALLET_SQL = (
    "TABLE Wallet(id, balance, PRIMARY KEY(id));\n"
    "PROGRAM Deposit(:a, :v):\n"
    "  UPDATE Wallet SET balance = balance + :v WHERE id = :a;\n"
    "COMMIT;\n"
    "PROGRAM Audit(:a):\n"
    "  SELECT balance INTO :b FROM Wallet WHERE id = :a;\n"
    "COMMIT;\n"
)

VOLATILE_KEYS = {"elapsed_us", "cached", "durable", "persist_error"}

# Every networking fault point must be armed at least once per smoke run,
# with the metric that proves it fired. `spec` bounds the blast radius so
# the fleet can still converge afterwards.
FAULT_POINTS = [
    {"point": "net.accept_fail", "spec": "net.accept_fail@1*2", "counter": "net.accept_errors"},
    {"point": "net.read_reset", "spec": "net.read_reset@2*3", "counter": "net.read_errors"},
    {"point": "net.write_short", "spec": "net.write_short@1*40", "counter": "net.partial_writes"},
    {"point": "net.write_stall", "spec": "net.write_stall@1*5", "counter": "net.write_stalls"},
]


def normalize(response):
    return {k: v for k, v in response.items() if k not in VOLATILE_KEYS}


def client_requests(session):
    return [
        {"cmd": "load_sql", "session": session, "sql": WALLET_SQL},
        {"cmd": "check", "session": session, "method": "type2"},
        {"cmd": "check", "session": session, "method": "type1"},
        {"cmd": "stats", "session": session},
    ]


def stdio_reference(mvrcd, requests):
    """Replays `requests` through a stdio daemon: the parity ground truth."""
    proc = subprocess.Popen(
        [mvrcd, "--stdio"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        responses = []
        for request in requests:
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            responses.append(normalize(json.loads(proc.stdout.readline())))
        return responses
    finally:
        proc.kill()
        proc.wait()


class TcpDaemon:
    """One mvrcd --listen process; the bound port is scraped from stderr."""

    def __init__(self, mvrcd, extra_args=(), state_dir=None):
        cmd = [mvrcd, "--listen=127.0.0.1:0", *extra_args]
        if state_dir is not None:
            cmd.append(f"--state-dir={state_dir}")
        self.proc = subprocess.Popen(
            cmd,
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port = None
        deadline = time.time() + 30
        while time.time() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                raise RuntimeError("daemon exited before listening")
            if "listening on" in line:
                self.port = int(line.rsplit(":", 1)[1])
                break
        if self.port is None:
            raise RuntimeError("no listening line on stderr")
        # Keep stderr drained so shutdown-flush messages cannot block the
        # daemon on a full pipe.
        self._drain = threading.Thread(
            target=lambda: [None for _ in self.proc.stderr], daemon=True
        )
        self._drain.start()

    def connect(self, timeout=10):
        sock = socket.create_connection(("127.0.0.1", self.port), timeout=timeout)
        sock.settimeout(timeout)
        return sock

    def sigkill(self):
        self.proc.kill()
        self.proc.wait()

    def sigterm(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def __del__(self):
        if self.proc.poll() is None:
            self.proc.kill()


class RetryingClient:
    """A client that survives resets and retryable errors the documented way:
    reconnect, back off, and replay on a fresh session."""

    def __init__(self, daemon, name, max_attempts=60):
        self.daemon = daemon
        self.name = name
        self.max_attempts = max_attempts
        self.retries = 0
        self.conversations = 0

    def run(self, make_requests):
        """Runs `make_requests(session)` to completion, retrying the whole
        conversation on a fresh session when the connection dies mid-way
        (mutations are not idempotent, so replaying a half-acknowledged
        conversation into the same session would be wrong)."""
        backoff = 0.01
        self.conversations += 1
        for attempt in range(self.max_attempts):
            session = f"{self.name}-n{self.conversations}-a{attempt}"
            try:
                return self._converse(make_requests(session))
            except (ConnectionError, socket.timeout, json.JSONDecodeError, OSError):
                self.retries += 1
                time.sleep(backoff)
                backoff = min(backoff * 2, 0.2)
        raise RuntimeError(f"client {self.name}: no success in {self.max_attempts} attempts")

    def _converse(self, requests):
        sock = self.daemon.connect()
        try:
            reader = sock.makefile("r")
            responses = []
            for request in requests:
                sock.sendall((json.dumps(request) + "\n").encode())
                line = reader.readline()
                if not line:
                    raise ConnectionError("connection closed mid-conversation")
                response = json.loads(line)
                if not response.get("ok") and response.get("retryable"):
                    raise ConnectionError(f"retryable shed: {response.get('error')}")
                responses.append(normalize(response))
            return responses
        finally:
            sock.close()


def fetch_counters(daemon):
    sock = daemon.connect()
    try:
        reader = sock.makefile("r")
        sock.sendall(b'{"cmd":"metrics"}\n')
        response = json.loads(reader.readline())
        assert response.get("ok"), f"metrics request failed: {response}"
        return response["counters"]
    finally:
        sock.close()


def phase_fault_points(mvrcd, reference):
    for entry in FAULT_POINTS:
        daemon = TcpDaemon(mvrcd, extra_args=[f"--fault={entry['spec']}"])
        try:
            clients = [RetryingClient(daemon, f"f{i}") for i in range(4)]
            threads, results = [], {}

            def hammer(client):
                results[client.name] = client.run(client_requests)

            for client in clients:
                thread = threading.Thread(target=hammer, args=(client,))
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()

            for client in clients:
                got = [strip_session(r) for r in results[client.name]]
                assert got == reference, (
                    f"[{entry['point']}] client {client.name} diverged:\n"
                    f"  got: {got}\n  want: {reference}"
                )
            counters = fetch_counters(daemon)
            assert counters.get(entry["counter"], 0) > 0, (
                f"[{entry['point']}] armed but {entry['counter']} never moved: "
                f"{counters}"
            )
            print(f"fault-point {entry['point']}: fired "
                  f"({entry['counter']}={counters[entry['counter']]}), "
                  f"all clients converged")
        finally:
            daemon.sigkill()


def strip_session(response):
    return {k: v for k, v in response.items() if k != "session"}


def phase_connection_chaos(mvrcd, reference):
    daemon = TcpDaemon(mvrcd)
    try:
        errors = []

        def chaos_client(index):
            try:
                client = RetryingClient(daemon, f"c{index}")
                for round_no in range(6):
                    requests = client_requests(f"c{index}-r{round_no}")
                    if round_no % 2 == 0:
                        # Kill the connection mid-request: send a request and
                        # hang up without reading the answer.
                        sock = daemon.connect()
                        sock.sendall(
                            (json.dumps(requests[0]) + "\n").encode())
                        sock.close()
                    got = [strip_session(r)
                           for r in client.run(client_requests)]
                    if got != reference:
                        errors.append(f"client {index} round {round_no} diverged")
                        return
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"client {index}: {exc!r}")

        threads = [threading.Thread(target=chaos_client, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, "\n".join(errors)

        # The daemon survived: a fresh conversation still works.
        final = RetryingClient(daemon, "final").run(client_requests)
        assert [strip_session(r) for r in final] == reference
        print("connection-chaos: 4 clients x 6 rounds of mid-request hangups, "
              "all converged")
    finally:
        daemon.sigkill()


MUTATIONS = [
    {"cmd": "load_sql", "session": "s", "builtin": "smallbank"},
    {"cmd": "remove_program", "session": "s", "name": "Balance"},
    {"cmd": "load_sql", "session": "s", "sql": WALLET_SQL},
    {"cmd": "remove_program", "session": "s", "name": "Amalgamate"},
]

VERDICT_REQUESTS = [
    {"cmd": "check", "session": "s", "method": "type2"},
    {"cmd": "check", "session": "s", "method": "type1"},
]


def mutation_reference(mvrcd, prefix_len):
    requests = MUTATIONS[:prefix_len] + [{"cmd": "stats", "session": "s"}] + VERDICT_REQUESTS
    responses = stdio_reference(mvrcd, requests)
    stats = responses[prefix_len]
    programs = tuple(sorted(stats.get("programs", []))) if stats.get("ok") else ()
    return programs, responses[prefix_len + 1:]


def phase_kill_under_load(mvrcd):
    references = {k: mutation_reference(mvrcd, k) for k in range(len(MUTATIONS) + 1)}
    state_dir = tempfile.mkdtemp(prefix="mvrc_net_chaos_")
    try:
        daemon = TcpDaemon(mvrcd, state_dir=state_dir)
        stop_spam = threading.Event()

        def spam_checks():
            while not stop_spam.is_set():
                try:
                    RetryingClient(daemon, "spam", max_attempts=1).run(client_requests)
                except Exception:  # noqa: BLE001 - load generator, dies with daemon
                    return

        spammer = threading.Thread(target=spam_checks, daemon=True)
        spammer.start()

        sock = daemon.connect()
        reader = sock.makefile("r")
        acked = 0
        for index, mutation in enumerate(MUTATIONS):
            sock.sendall((json.dumps(mutation) + "\n").encode())
            if index == len(MUTATIONS) - 1:
                break  # last mutation left in flight when the kill lands
            response = json.loads(reader.readline())
            assert response.get("ok"), f"mutation failed: {response}"
            acked += 1
        time.sleep(0.02)
        daemon.sigkill()
        stop_spam.set()
        spammer.join(timeout=10)

        survivor = TcpDaemon(mvrcd, state_dir=state_dir)
        try:
            sock = survivor.connect()
            reader = sock.makefile("r")

            def ask(request):
                sock.sendall((json.dumps(request) + "\n").encode())
                return json.loads(reader.readline())

            stats = ask({"cmd": "stats", "session": "s"})
            if not stats.get("ok"):
                snaps = [f for f in os.listdir(state_dir) if f.endswith(".snap")]
                assert not snaps, f"session missing but snapshot present: {snaps}"
                print("kill-under-load: degraded cleanly (no live snapshot)")
                return
            programs = tuple(sorted(stats.get("programs", [])))
            verdicts = [normalize(ask(r)) for r in VERDICT_REQUESTS]
            upper = min(acked + 1, len(MUTATIONS))
            matching = [k for k in range(upper + 1)
                        if references[k] == (programs, verdicts)]
            assert matching, (
                f"recovered state matches no acknowledged prefix <= {upper}:\n"
                f"  programs: {programs}\n  verdicts: {verdicts}"
            )
            print(f"kill-under-load: recovered prefix {matching[-1]} of {acked} acked, "
                  f"verdicts match stdio reference")
        finally:
            survivor.sigkill()
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def phase_drain(mvrcd):
    daemon = TcpDaemon(mvrcd, extra_args=["--drain-timeout=5000"])
    sock = daemon.connect()
    reader = sock.makefile("r")
    request = {"cmd": "load_sql", "session": "d", "sql": WALLET_SQL}
    sock.sendall((json.dumps(request) + "\n").encode())
    # Give the daemon time to read the request off the socket; a request the
    # daemon never received may legitimately be dropped by the drain (the
    # client's contract is to retry it), and this phase is about the other
    # promise: a received request's response survives the SIGTERM.
    # (tests/net_test.cc pins the answered-during-drain case deterministically
    # with net.write_stall.)
    time.sleep(0.25)
    daemon.proc.send_signal(signal.SIGTERM)
    line = reader.readline()
    assert line, "drain dropped the in-flight response"
    response = json.loads(line)
    assert response.get("ok"), f"drained response not ok: {response}"
    assert reader.readline() == "", "connection outlived the drain"
    code = daemon.proc.wait(timeout=30)
    assert code == 0, f"daemon exited {code} after SIGTERM drain"
    print("drain: SIGTERM answered the in-flight request, closed, exited 0")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mvrcd", default="build/mvrcd", help="daemon binary")
    args = parser.parse_args()
    if not os.path.exists(args.mvrcd):
        print(f"error: {args.mvrcd} not found (build first)", file=sys.stderr)
        return 2

    reference = [strip_session(r)
                 for r in stdio_reference(args.mvrcd, client_requests("ref"))]

    phase_fault_points(args.mvrcd, reference)
    phase_connection_chaos(args.mvrcd, reference)
    phase_kill_under_load(args.mvrcd)
    phase_drain(args.mvrcd)
    print("net_chaos_smoke: all phases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
