#!/usr/bin/env python3
"""Checks intra-repo markdown links in README.md and docs/.

Verifies that every relative link target `[text](path#anchor)` resolves to
an existing file (or directory) in the repository, and that fragment
anchors into markdown files match a heading in the target (GitHub slug
rules: lowercase, spaces to dashes, punctuation dropped). External links
(http/https/mailto) are not fetched. Exits 1 listing every broken link.

Usage: scripts/check_md_links.py [file-or-dir ...]   (default: README.md docs)
"""

import os
import re
import sys

# [text](target) — excluding images is unnecessary: an image path must
# resolve just the same. Nested brackets in the text are out of scope.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading):
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def markdown_anchors(path):
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                slug = github_slug(match.group(1))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def check_file(md_path, repo_root):
    errors = []
    base = os.path.dirname(md_path)
    for lineno, target in iter_links(md_path):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target, _, fragment = target.partition("#")
        if target:
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(f"{md_path}:{lineno}: broken link: {target}")
                continue
        else:
            resolved = md_path  # same-file anchor
        if fragment and resolved.endswith(".md") and os.path.isfile(resolved):
            if fragment not in markdown_anchors(resolved):
                errors.append(f"{md_path}:{lineno}: broken anchor: "
                              f"{target or os.path.basename(md_path)}#{fragment}")
        if os.path.commonpath([os.path.abspath(resolved), repo_root]) != repo_root:
            errors.append(f"{md_path}:{lineno}: link escapes the repository: {target}")
    return errors


def main(argv):
    repo_root = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
    roots = argv[1:] or [os.path.join(repo_root, "README.md"),
                         os.path.join(repo_root, "docs")]
    files = []
    for root in roots:
        if os.path.isdir(root):
            for dirpath, _, names in os.walk(root):
                files.extend(os.path.join(dirpath, n) for n in sorted(names)
                             if n.endswith(".md"))
        elif os.path.isfile(root):
            files.append(root)
        else:
            print(f"no such file or directory: {root}")
            return 1

    errors = []
    for path in files:
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(error)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
