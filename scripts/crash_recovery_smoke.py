#!/usr/bin/env python3
"""Crash-recovery smoke test for mvrcd --state-dir.

Drives a scripted mutation sequence through a durable daemon, SIGKILLs it at
every interesting instant (after each acknowledged mutation, and once more
with a request in flight), restarts on the same state dir, and asserts the
recovered world is exactly one of the allowed outcomes:

  * the session is restored to the state of some acknowledged mutation
    prefix, and its `check` / `subsets` responses are bit-identical to an
    uninterrupted reference daemon replaying that same prefix; or
  * the snapshot was quarantined (torn by the kill) and the session is
    absent — degraded, never wrong.

Any other outcome — a verdict differing from every prefix, a daemon that
dies on startup, a half-restored session — fails the script.

The kill matrix runs over both transports (--transport=stdio|tcp|both,
default both): the victim and survivor daemons speak either stdin/stdout or
--listen TCP, while the references always come from a stdio daemon — so the
TCP runs also re-assert cross-transport verdict parity after recovery.

Usage: scripts/crash_recovery_smoke.py [--mvrcd build/mvrcd]
                                       [--transport stdio|tcp|both]
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

WALLET_SQL = (
    "TABLE Wallet(id, balance, PRIMARY KEY(id));\n"
    "\n"
    "PROGRAM Deposit(:a, :v):\n"
    "  UPDATE Wallet SET balance = balance + :v WHERE id = :a;\n"
    "COMMIT;\n"
)

DEPOSIT_V2_SQL = (
    "PROGRAM Deposit(:a, :v):\n"
    "  SELECT balance INTO :b FROM Wallet WHERE id = :a;\n"
    "  UPDATE Wallet SET balance = :b + :v WHERE id = :a;\n"
    "COMMIT;\n"
)

MUTATIONS = [
    {"cmd": "load_sql", "session": "s", "builtin": "smallbank"},
    {"cmd": "remove_program", "session": "s", "name": "Balance"},
    {"cmd": "load_sql", "session": "s", "sql": WALLET_SQL},
    {"cmd": "replace_program", "session": "s", "sql": DEPOSIT_V2_SQL},
    {"cmd": "remove_program", "session": "s", "name": "Amalgamate"},
]

VERDICT_REQUESTS = [
    {"cmd": "check", "session": "s", "method": "type2"},
    {"cmd": "check", "session": "s", "method": "type1"},
    {"cmd": "subsets", "session": "s"},
]

# Fields that legitimately differ between a live and a recovered daemon.
VOLATILE_KEYS = {"elapsed_us", "cached", "durable", "persist_error"}


def normalize(response):
    return {k: v for k, v in response.items() if k not in VOLATILE_KEYS}


class Daemon:
    """One mvrcd process driven synchronously over stdin/stdout or TCP."""

    def __init__(self, mvrcd, state_dir=None, transport="stdio"):
        self.transport = transport
        self.sock = None
        self.reader = None
        cmd = [mvrcd]
        if transport == "tcp":
            cmd.append("--listen=127.0.0.1:0")
        if state_dir is not None:
            cmd.append(f"--state-dir={state_dir}")
        self.proc = subprocess.Popen(
            cmd,
            stdin=subprocess.PIPE if transport == "stdio" else subprocess.DEVNULL,
            stdout=subprocess.PIPE if transport == "stdio" else subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        if transport == "tcp":
            port = None
            while True:
                line = self.proc.stderr.readline()
                if not line:
                    raise RuntimeError("daemon exited before listening")
                if "listening on" in line:
                    port = int(line.rsplit(":", 1)[1])
                    break
            # Keep stderr drained so shutdown messages cannot block the
            # daemon on a full pipe.
            threading.Thread(
                target=lambda: [None for _ in self.proc.stderr], daemon=True
            ).start()
            self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
            self.sock.settimeout(60)
            self.reader = self.sock.makefile("r")

    def request(self, obj):
        self.send_only(obj)
        if self.transport == "tcp":
            line = self.reader.readline()
        else:
            line = self.proc.stdout.readline()
        if not line:
            raise RuntimeError("daemon closed its response stream mid-conversation")
        return json.loads(line)

    def send_only(self, obj):
        payload = json.dumps(obj) + "\n"
        if self.transport == "tcp":
            self.sock.sendall(payload.encode())
        else:
            self.proc.stdin.write(payload)
            self.proc.stdin.flush()

    def kill(self):
        self.proc.kill()
        self.proc.wait()
        if self.sock is not None:
            self.sock.close()

    def close(self):
        if self.transport == "tcp":
            self.sock.close()
            self.proc.send_signal(signal.SIGTERM)
            self.proc.wait(timeout=60)
            return ""
        self.proc.stdin.close()
        self.proc.wait(timeout=60)
        return self.proc.stderr.read()


def reference_state(mvrcd, prefix_len):
    """Verdicts of an uninterrupted, store-less daemon after `prefix_len`
    mutations, plus the session's sorted program names (the state's key)."""
    daemon = Daemon(mvrcd)
    try:
        for mutation in MUTATIONS[:prefix_len]:
            response = daemon.request(mutation)
            assert response.get("ok"), f"reference mutation failed: {response}"
        stats = daemon.request({"cmd": "stats", "session": "s"})
        programs = tuple(sorted(stats.get("programs", []))) if stats.get("ok") else ()
        verdicts = [normalize(daemon.request(r)) for r in VERDICT_REQUESTS]
        return programs, verdicts
    finally:
        daemon.kill()


def run_one_crash(mvrcd, state_dir, acked, in_flight, references,
                  transport="stdio"):
    """Kill a durable daemon after `acked` acknowledged mutations (plus one
    unacknowledged in-flight request when `in_flight`), restart, verify."""
    label = f"transport={transport} acked={acked} in_flight={in_flight}"
    victim = Daemon(mvrcd, state_dir, transport=transport)
    for mutation in MUTATIONS[:acked]:
        response = victim.request(mutation)
        assert response.get("ok"), f"[{label}] mutation failed: {response}"
    if in_flight and acked < len(MUTATIONS):
        victim.send_only(MUTATIONS[acked])
        # Give the in-flight request a chance to be mid-mutation or
        # mid-snapshot when the SIGKILL lands (still a race by design —
        # every landing spot must be safe).
        time.sleep(0.02)
    victim.kill()

    survivor = Daemon(mvrcd, state_dir, transport=transport)
    try:
        stats = survivor.request({"cmd": "stats", "session": "s"})
        if not stats.get("ok"):
            # Allowed only as an explicit quarantine/no-snapshot outcome:
            # the state dir must hold no live snapshot, and a *.corrupt file
            # unless the kill landed before the first publish.
            snaps = [f for f in os.listdir(state_dir) if f.endswith(".snap")]
            assert not snaps, f"[{label}] session missing but snapshot present: {snaps}"
            corrupt = [f for f in os.listdir(state_dir) if f.endswith(".corrupt")]
            possible_no_publish = acked == 0
            assert corrupt or possible_no_publish, (
                f"[{label}] session lost without quarantine evidence"
            )
            return "quarantined" if corrupt else "no-snapshot"

        programs = tuple(sorted(stats.get("programs", [])))
        verdicts = [normalize(survivor.request(r)) for r in VERDICT_REQUESTS]
        # The recovered prefix can only be one the daemon acknowledged, or
        # the in-flight mutation that the kill raced with — and the entire
        # recovered state (program set AND every verdict) must be
        # bit-identical to that prefix's uninterrupted reference.
        upper = min(acked + (1 if in_flight else 0), len(MUTATIONS))
        matching = [k for k in range(upper + 1)
                    if references[k] == (programs, verdicts)]
        assert matching, (
            f"[{label}] recovered state matches no acknowledged prefix <= {upper}:\n"
            f"  programs: {programs}\n  verdicts: {verdicts}"
        )
        return f"restored-prefix-{matching[-1]}"
    finally:
        survivor.kill()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mvrcd", default="build/mvrcd", help="daemon binary")
    parser.add_argument("--transport", default="both",
                        choices=("stdio", "tcp", "both"),
                        help="transport(s) the victim/survivor daemons speak "
                             "(references always use stdio)")
    args = parser.parse_args()

    if not os.path.exists(args.mvrcd):
        print(f"error: {args.mvrcd} not found (build first)", file=sys.stderr)
        return 2

    references = {}
    for k in range(len(MUTATIONS) + 1):
        references[k] = reference_state(args.mvrcd, k)

    transports = ("stdio", "tcp") if args.transport == "both" else (args.transport,)
    for transport in transports:
        outcomes = []
        for acked in range(len(MUTATIONS) + 1):
            for in_flight in (False, True):
                if in_flight and acked == len(MUTATIONS):
                    continue
                state_dir = tempfile.mkdtemp(prefix="mvrc_crash_smoke_")
                try:
                    outcome = run_one_crash(args.mvrcd, state_dir, acked,
                                            in_flight, references,
                                            transport=transport)
                    outcomes.append(outcome)
                    print(f"transport={transport} acked={acked} "
                          f"in_flight={int(in_flight)}: {outcome}")
                finally:
                    shutil.rmtree(state_dir, ignore_errors=True)

        restored = sum(1 for o in outcomes if o.startswith("restored"))
        print(f"crash_recovery_smoke[{transport}]: {len(outcomes)} kills, "
              f"{restored} restored, {len(outcomes) - restored} degraded cleanly")
        # The smoke must actually exercise recovery, not just the degraded path.
        assert restored >= len(MUTATIONS), "too few kills recovered a session"
    return 0


if __name__ == "__main__":
    sys.exit(main())
